#include "engine/holim_engine.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "algo/heuristics.h"
#include "diffusion/spread_estimator.h"
#include "util/deadline.h"
#include "util/timer.h"

namespace holim {

namespace {

/// Bit-exact rendering of a double for cache keys: std::to_string
/// truncates to 6 decimals, which would collide distinct knob values onto
/// one key and silently warm-reuse the wrong selector.
std::string KeyBits(double value) {
  return std::to_string(std::bit_cast<uint64_t>(value));
}

/// Shape/range checks of the query-family request fields against the
/// bound graph, before any artifact is built. Kind-agnostic fields
/// (node_costs) are validated whenever present, so kEvaluate's
/// total_cost reporting meets the same contract as kBudgeted's
/// selection.
Status ValidateQueryFields(const SolveRequest& r, uint32_t num_nodes) {
  if (!r.node_costs.empty()) {
    if (r.node_costs.size() != num_nodes) {
      return Status::InvalidArgument(
          "node_costs must have one entry per node (" +
          std::to_string(r.node_costs.size()) + " given, " +
          std::to_string(num_nodes) + " nodes)");
    }
    for (const double c : r.node_costs) {
      if (!std::isfinite(c) || !(c > 0.0)) {
        return Status::InvalidArgument("node costs must be finite and > 0");
      }
    }
  }
  if (!r.target_weights.empty()) {
    if (r.target_weights.size() != num_nodes) {
      return Status::InvalidArgument(
          "target_weights must have one entry per node (" +
          std::to_string(r.target_weights.size()) + " given, " +
          std::to_string(num_nodes) + " nodes)");
    }
    for (const double w : r.target_weights) {
      if (!std::isfinite(w) || w < 0.0) {
        return Status::InvalidArgument(
            "target weights must be finite and >= 0");
      }
    }
  }
  switch (r.query) {
    case QueryKind::kTopK:
      break;
    case QueryKind::kBudgeted:
      if (!std::isfinite(r.budget) || !(r.budget > 0.0)) {
        return Status::InvalidArgument(
            "kBudgeted requires a finite budget > 0");
      }
      break;
    case QueryKind::kTargeted:
      if (r.target_weights.empty()) {
        return Status::InvalidArgument(
            "kTargeted requires target_weights (one per node)");
      }
      if (r.oracle != SpreadOracle::kSketch) {
        return Status::InvalidArgument(
            "kTargeted requires the sketch oracle (weighted spread is "
            "evaluated over the frozen snapshot worlds)");
      }
      break;
    case QueryKind::kEvaluate:
    case QueryKind::kExplain:
      if (r.given_seeds.empty()) {
        return Status::InvalidArgument(
            std::string(QueryKindName(r.query)) +
            " requires a non-empty given_seeds set");
      }
      for (const NodeId s : r.given_seeds) {
        if (s >= num_nodes) {
          return Status::InvalidArgument("given seed id " +
                                         std::to_string(s) +
                                         " out of range");
        }
      }
      if (r.query == QueryKind::kExplain &&
          r.oracle != SpreadOracle::kSketch) {
        return Status::InvalidArgument(
            "kExplain requires the sketch oracle (contributions come "
            "from the session bitsets)");
      }
      if (!r.target_weights.empty() && r.oracle != SpreadOracle::kSketch) {
        return Status::InvalidArgument(
            "weighted evaluation requires the sketch oracle");
      }
      break;
  }
  return Status::OK();
}

/// A deadline-layer stop (as opposed to a real error the degrade tier must
/// never swallow).
bool IsStopStatus(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

/// Binds a deadline to a selector for one Select call and guarantees the
/// unbind on every exit path — a cached selector outlives the solve, and
/// the Deadline lives on Solve's stack.
struct ScopedSelectorDeadline {
  SeedSelector* selector = nullptr;
  ~ScopedSelectorDeadline() {
    if (selector) selector->set_deadline(nullptr);
  }
};

/// The engine's last-resort degradation tier: DegreeDiscountIC, which runs
/// in O(m + n log n) with no sampling — always fast enough to answer after
/// the real algorithm's budget is gone. For budgeted queries the ranking
/// is walked greedily under the budget; for targeted queries the plain
/// top-k ranking stands in (the weights are ignored — documented tier
/// semantics, not an oversight).
Result<SeedSelection> HeuristicTierSelect(const Graph& graph,
                                          const SolveRequest& request,
                                          std::string* tier_name) {
  DegreeDiscountSelector fallback(graph, request.p);
  *tier_name = fallback.name();
  if (request.query != QueryKind::kBudgeted) {
    return fallback.Select(request.k);
  }
  HOLIM_ASSIGN_OR_RETURN(SeedSelection ranked,
                         fallback.Select(graph.num_nodes()));
  SeedSelection out;
  double remaining = request.budget;
  for (std::size_t i = 0;
       i < ranked.seeds.size() && out.seeds.size() < request.k; ++i) {
    const NodeId u = ranked.seeds[i];
    const double cost =
        request.node_costs.empty() ? 1.0 : request.node_costs[u];
    if (cost > remaining) continue;
    remaining -= cost;
    out.seeds.push_back(u);
    if (i < ranked.seed_scores.size()) {
      out.seed_scores.push_back(ranked.seed_scores[i]);
    }
  }
  return out;
}

}  // namespace

HolimEngine::HolimEngine(const Graph& graph, const EngineOptions& options)
    : graph_(&graph), workspace_(options.max_cache_bytes) {
  workspace_.set_hard_budget(options.hard_cache_budget);
  // Touch the registry so built-ins are registered before the first Solve
  // (and before any embedder Register calls race static init order).
  (void)AlgorithmRegistry::Global();
}

ThreadPool* HolimEngine::PoolFor(uint32_t threads) {
  if (threads == 0) return nullptr;
  auto& pool = pools_[threads];
  if (!pool) pool = std::make_unique<ThreadPool>(threads);
  return pool.get();
}

std::string HolimEngine::SelectorKey(const AlgorithmInfo& info,
                                     const SolveRequest& r) const {
  // Every knob that could influence the built selector is in the key; k is
  // deliberately absent (selectors take k at Select time), which is what
  // makes a k-sweep reuse one artifact. Over-keying on knobs an algorithm
  // ignores only costs a cheap rebuild, never correctness.
  std::string key = "selector|" + info.name;
  key += "|fp=" + std::to_string(FingerprintParams(*r.params));
  key += "|op=" + (r.opinions != nullptr
                       ? std::to_string(FingerprintOpinions(*r.opinions))
                       : std::string("-"));
  key += "|base=" + std::to_string(static_cast<int>(r.oi_base));
  key += "|lambda=" + KeyBits(r.lambda);
  key += "|l=" + std::to_string(r.l);
  key += "|eps=" + KeyBits(r.epsilon);
  key += "|maxtheta=" + std::to_string(r.max_theta);
  key += "|p=" + KeyBits(r.p);
  key += "|mc=" + std::to_string(r.mc);
  key += "|seed=" + std::to_string(r.seed);
  key += "|oracle=" + std::to_string(static_cast<int>(r.oracle));
  key += "|R=" + std::to_string(r.EffectiveSketchCount());
  key += "|snapshots=" + std::to_string(r.num_snapshots);
  key += "|rescore=" + std::to_string(r.incremental_rescore ? 1 : 0);
  key += "|threads=" + std::to_string(r.threads);
  // Eval mode changes no result bits, but sketch-backed selectors capture
  // it at construction (session scratch layout), so cached selectors must
  // not leak across modes. The sketch ARENA key deliberately omits it —
  // both traversals read the same worlds.
  key += "|eval=" + std::to_string(static_cast<int>(r.sketch_eval));
  // Query-family knobs. The kind and the *content* of costs / target
  // weights / given seeds are all part of the key (a weighted objective is
  // baked into the selector at construction; cost vectors gate which
  // SelectBudgeted calls may reuse a session); the budget, like k, is a
  // call-time argument and deliberately absent.
  key += "|query=" + std::to_string(static_cast<int>(r.query));
  key += "|costs=" + std::to_string(FingerprintDoubles(r.node_costs));
  key += "|tw=" + std::to_string(FingerprintDoubles(r.target_weights));
  key += "|gs=" + std::to_string(FingerprintNodes(r.given_seeds));
  // Graph identity across delta epochs. Empty at epoch 0 so pre-streaming
  // keys (and any baseline churn statistics) are unchanged.
  const std::string token = graph_token();
  if (!token.empty()) key += "|" + token;
  return key;
}

std::string HolimEngine::graph_token() const {
  if (streaming_ == nullptr || streaming_->epoch() == 0) return "";
  return "g=" + std::to_string(streaming_->base_fingerprint()) + "@" +
         std::to_string(streaming_->epoch());
}

Result<HolimEngine::DeltaReport> HolimEngine::ApplyDelta(
    const GraphDelta& delta, const InfluenceParams& params) {
  if (params.probability.size() != graph_->num_edges()) {
    return Status::InvalidArgument(
        "ApplyDelta params must match the current graph: " +
        std::to_string(params.probability.size()) + " probabilities vs " +
        std::to_string(graph_->num_edges()) + " edges");
  }
  if (streaming_ == nullptr) {
    streaming_ = std::make_unique<StreamingGraph>(*graph_);
  }
  DeltaReport report;
  HOLIM_ASSIGN_OR_RETURN(ResolvedDelta resolved,
                         ResolveDelta(streaming_->graph(), delta));
  if (resolved.Empty()) {
    report.epoch = streaming_->epoch();
    report.params = params;  // nothing moved; EdgeIds are unchanged
    return report;
  }
  // The fingerprint the patchable sketches are cached under — taken
  // before the remap, because that is what their keys were built from.
  const uint64_t old_fp = FingerprintParams(params);
  HOLIM_RETURN_NOT_OK(streaming_->ApplyResolved(resolved));
  const Graph& new_graph = streaming_->graph();
  HOLIM_ASSIGN_OR_RETURN(
      report.params,
      ApplyDeltaToParams(streaming_->previous(), params, new_graph, resolved));
  graph_ = &new_graph;
  report.epoch = streaming_->epoch();
  report.effective = true;
  report.inserted = resolved.num_inserted;
  report.removed = resolved.removes.size();
  report.reweighted = resolved.num_reweighted;
  const uint64_t new_fp = FingerprintParams(report.params);
  const Workspace::DeltaPatchStats stats = workspace_.ApplyGraphDelta(
      old_fp, new_fp, graph_token(), [&](SketchOracle& sketch) {
        return sketch.ApplyDelta(new_graph, report.params);
      });
  report.patched_sketches = stats.patched;
  report.evicted_artifacts = stats.evicted;
  // Patched arenas can grow (inserted edges lengthen their splice
  // tables), so the byte budget must be re-enforced here — a patch-heavy
  // churn epoch must not overshoot until the next solve.
  report.evicted_artifacts += workspace_.EnforceBudget();
  return report;
}

Result<SolveResult> HolimEngine::Solve(const SolveRequest& request) {
  Timer total_timer;
  if (request.params == nullptr) {
    return Status::InvalidArgument("SolveRequest.params must be set");
  }
  HOLIM_RETURN_NOT_OK(ValidateQueryFields(request, graph_->num_nodes()));
  const bool runs_selector = request.query == QueryKind::kTopK ||
                             request.query == QueryKind::kBudgeted ||
                             request.query == QueryKind::kTargeted;
  if (runs_selector && request.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  const AlgorithmInfo* info =
      AlgorithmRegistry::Global().Find(request.algorithm);
  if (info == nullptr) {
    return Status::InvalidArgument(
        "unknown algorithm '" + request.algorithm + "' (registered: " +
        AlgorithmRegistry::Global().NamesOneLine() + ")");
  }
  // Capability gate: an unsupported (algorithm, kind) pair is a typed
  // error, never a silent top-k fallback.
  if ((info->supported_queries & QueryBit(request.query)) == 0) {
    return Status::Unimplemented(
        "algorithm '" + info->name + "' does not support query kind '" +
        QueryKindName(request.query) +
        "' (supports: " + QueryMaskNames(info->supported_queries) + ")");
  }
  if (info->needs_opinions && request.opinions == nullptr) {
    return Status::InvalidArgument("algorithm '" + info->name +
                                   "' requires SolveRequest.opinions");
  }
  if (!std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be finite and >= 0");
  }
  if (!runs_selector) return SolveGivenSeeds(request, total_timer);

  // Deadline scaffolding. With no budget/deadline/token the Deadline stays
  // inactive and every checkpoint downstream is one null-pointer test —
  // the solve path is byte-identical to the deadline-free engine. A bare
  // cancel token rides on an inexhaustible work budget (tick mode polls
  // the token at every checkpoint).
  Deadline deadline;
  if (request.work_budget > 0) {
    deadline = Deadline::WorkBudget(request.work_budget, request.cancel_token);
  } else if (request.deadline_ms > 0.0) {
    deadline = Deadline::AfterMillis(request.deadline_ms, request.clock,
                                     request.cancel_token);
  } else if (request.cancel_token != nullptr) {
    deadline = Deadline::WorkBudget(std::numeric_limits<uint64_t>::max(),
                                    request.cancel_token);
  }
  const bool bounded = deadline.active();

  SolveResult result;
  result.query = request.query;
  SolveContext ctx{*graph_, request, workspace_, PoolFor(request.threads),
                   graph_token(), bounded ? &deadline : nullptr};

  // Artifact acquisition: the cached selector (and, inside the factory,
  // any shared sketch oracle). artifact_seconds covers exactly the
  // cold-build work a warm solve skips. Everything this solve touches
  // from here on is pinned in the post-solve budget pass — a budget that
  // can't hold the working set must evict colder keys, not what the next
  // (affinity-grouped) request is about to reuse.
  const uint64_t pre_solve_tick = workspace_.tick();
  Timer artifact_timer;
  const std::string sketch_key =
      SketchOracleKey(FingerprintParams(*request.params),
                      request.EffectiveSketchCount(), request.seed,
                      /*record_edge_offsets=*/false, graph_token());
  if (request.oracle == SpreadOracle::kSketch) {
    // "Warm" = the arena predates this solve (the factory may build it
    // below, which is still a cold build).
    result.warm_sketch = workspace_.PeekSketchOracle(sketch_key) != nullptr;
  }
  const std::string selector_key = SelectorKey(*info, request);
  SeedSelector* selector = nullptr;
  // Bounded solves that miss the warm cache build an *uncached* selector:
  // a degraded Select can leave algorithm-internal state mid-round, which
  // must never be served to a later solve. (A warm hit is reused — and
  // retired below if this run degrades.)
  std::unique_ptr<SeedSelector> transient_selector;
  bool cached_selector = false;
  // Set when the deadline expired while the factory built its artifacts
  // (sketch sampling waves): there is no selector at all, so under
  // kDegrade the heuristic tier answers directly.
  Status factory_stop;
  if (!bounded) {
    HOLIM_ASSIGN_OR_RETURN(
        selector,
        workspace_.GetSelector(selector_key,
                               [&]() { return info->factory(ctx); },
                               &result.warm_selector));
  } else {
    selector = workspace_.PeekSelector(selector_key);
    if (selector != nullptr) {
      result.warm_selector = true;
      cached_selector = true;
    } else {
      Result<std::unique_ptr<SeedSelector>> built = info->factory(ctx);
      if (built.ok()) {
        transient_selector = std::move(*built);
        selector = transient_selector.get();
      } else if (request.on_deadline == OnDeadline::kDegrade &&
                 IsStopStatus(built.status())) {
        factory_stop = built.status();
      } else {
        return built.status();
      }
    }
  }
  ScopedSelectorDeadline deadline_binding{bounded ? selector : nullptr};
  if (deadline_binding.selector) selector->set_deadline(&deadline);

  // The spread-evaluation sketch is acquired up front too, so its build
  // cost lands in artifact_seconds, not spread_seconds. When the request
  // doesn't evaluate spread, the arena is only *peeked* (the factory
  // builds it when the objective needs it) so stateless algorithms under
  // --oracle=sketch don't pay for worlds nobody reads. The eval build is
  // deliberately NOT deadline-bounded: it either hits the arena the
  // factory already built or serves an algorithm whose solve the deadline
  // no longer helps; degraded runs skip evaluation entirely.
  std::shared_ptr<const SketchOracle> eval_sketch;
  if (request.oracle == SpreadOracle::kSketch && factory_stop.ok()) {
    if (request.evaluate_spread) {
      SketchOptions options;
      options.num_snapshots = request.EffectiveSketchCount();
      options.seed = request.seed;
      options.pool = ctx.pool;
      HOLIM_ASSIGN_OR_RETURN(
          eval_sketch,
          workspace_.GetSketchOracleChecked(*graph_, *request.params, options,
                                            graph_token()));
    } else {
      eval_sketch = workspace_.PeekSketchOracle(sketch_key);
    }
    if (eval_sketch != nullptr) {
      result.sketch_arena_bytes = eval_sketch->ArenaBytes();
    }
  }
  result.artifact_seconds = artifact_timer.ElapsedSeconds();

  SeedSelection selection;
  if (!factory_stop.ok()) {
    // Artifact build died on the deadline: synthesize an empty degraded
    // selection so the tier ladder below takes over.
    selection.degraded = true;
    selection.stop_status = factory_stop;
  } else if (request.query == QueryKind::kBudgeted) {
    // Empty costs mean uniform 1.0 — materialized here once so selectors
    // see one contract (a full per-node span).
    std::vector<double> uniform;
    std::span<const double> costs(request.node_costs);
    if (costs.empty()) {
      uniform.assign(graph_->num_nodes(), 1.0);
      costs = uniform;
    }
    HOLIM_ASSIGN_OR_RETURN(
        selection, selector->SelectBudgeted(request.k, costs, request.budget));
  } else {
    HOLIM_ASSIGN_OR_RETURN(selection, selector->Select(request.k));
  }
  result.seeds = std::move(selection.seeds);
  result.seed_scores = std::move(selection.seed_scores);
  result.algorithm = selector != nullptr ? selector->name() : info->name;
  result.select_seconds = selection.elapsed_seconds;
  result.overhead_bytes = selection.overhead_bytes;
  result.scratch_bytes = selection.scratch_bytes;
  if (selector != nullptr) {
    result.stats = selector->LastRunStats();
    result.SortStats();
  }
  result.rounds_completed = static_cast<uint32_t>(result.seeds.size());

  if (selection.degraded) {
    if (request.on_deadline == OnDeadline::kFail) {
      return selection.stop_status;
    }
    result.degraded = true;
    result.degradation_reason = selection.stop_status.ToString();
    if (cached_selector) {
      // The degraded Select may have left the cached selector's internal
      // state mid-round; retire the artifact (name/stats were captured
      // above) so later solves rebuild clean.
      workspace_.Evict(selector_key);
      selector = nullptr;
      deadline_binding.selector = nullptr;
    }
    if (result.seeds.empty()) {
      result.tier = ResultTier::kHeuristic;
      result.rounds_completed = 0;
      std::string tier_name;
      HOLIM_ASSIGN_OR_RETURN(
          SeedSelection fallback,
          HeuristicTierSelect(*graph_, request, &tier_name));
      result.seeds = std::move(fallback.seeds);
      result.seed_scores = std::move(fallback.seed_scores);
      result.algorithm = tier_name;
    } else {
      result.tier = ResultTier::kPrefix;
    }
  }

  if (request.query == QueryKind::kBudgeted || !request.node_costs.empty()) {
    for (const NodeId s : result.seeds) {
      result.total_cost +=
          request.node_costs.empty() ? 1.0 : request.node_costs[s];
    }
  }

  // Degraded solves skip the spread evaluation: the time budget is spent,
  // and an evaluation pass can cost as much as the selection it follows.
  // result.spread stays 0 (callers can issue a kEvaluate query later).
  if (request.evaluate_spread && !result.degraded) {
    Timer spread_timer;
    if (eval_sketch != nullptr) {
      result.spread = eval_sketch->Estimate(result.seeds,
                                            request.sketch_eval);
      if (request.query == QueryKind::kTargeted) {
        result.targeted_spread = eval_sketch->EstimateWeighted(
            result.seeds, request.target_weights, request.sketch_eval);
      }
    } else {
      McOptions mc;
      mc.num_simulations = request.mc;
      mc.seed = request.seed;
      result.spread = EstimateSpread(*graph_, *request.params, result.seeds,
                                     mc);
    }
    result.spread_seconds = spread_timer.ElapsedSeconds();
  }

  workspace_.EnforceBudget(pre_solve_tick);
  result.workspace_bytes = workspace_.MemoryFootprintBytes();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

Result<SolveResult> HolimEngine::SolveGivenSeeds(const SolveRequest& request,
                                                 const Timer& total_timer) {
  SolveResult result;
  result.query = request.query;
  // No selector runs; the display name records what answered instead.
  result.algorithm = QueryKindName(request.query);
  result.seeds = request.given_seeds;

  // Same working-set pin as Solve's: the arena fetched for this
  // evaluation must survive the post-solve budget pass.
  const uint64_t pre_solve_tick = workspace_.tick();
  Timer artifact_timer;
  std::shared_ptr<const SketchOracle> sketch;
  if (request.oracle == SpreadOracle::kSketch) {
    const std::string sketch_key =
        SketchOracleKey(FingerprintParams(*request.params),
                        request.EffectiveSketchCount(), request.seed,
                        /*record_edge_offsets=*/false, graph_token());
    result.warm_sketch = workspace_.PeekSketchOracle(sketch_key) != nullptr;
    SketchOptions options;
    options.num_snapshots = request.EffectiveSketchCount();
    options.seed = request.seed;
    options.pool = PoolFor(request.threads);
    sketch = workspace_.GetSketchOracle(*graph_, *request.params, options,
                                        graph_token());
    result.sketch_arena_bytes = sketch->ArenaBytes();
  }
  result.artifact_seconds = artifact_timer.ElapsedSeconds();

  const bool weighted = !request.target_weights.empty();
  Timer spread_timer;
  if (request.query == QueryKind::kExplain) {
    // One committed session pass over the given seeds, in order:
    // contribution i is the exact marginal gain of seeds[i] given
    // seeds[0..i) over the frozen worlds, so the vector telescopes to the
    // session spread (bitwise, when the per-commit quotients are exact —
    // e.g. any power-of-two snapshot count).
    SketchOracle::Session session(
        *sketch, request.sketch_eval,
        weighted ? std::span<const double>(request.target_weights)
                 : std::span<const double>{});
    result.seed_contributions.reserve(request.given_seeds.size());
    for (const NodeId s : request.given_seeds) {
      result.seed_contributions.push_back(session.Commit(s));
    }
    const double session_spread = session.Spread();
    if (weighted) {
      result.targeted_spread = session_spread;
      result.spread = sketch->Estimate(result.seeds, request.sketch_eval);
    } else {
      result.spread = session_spread;
    }
    result.scratch_bytes = session.ScratchBytes();
  } else {  // kEvaluate — `evaluate_spread` is implied by the kind.
    if (sketch != nullptr) {
      result.spread = sketch->Estimate(result.seeds, request.sketch_eval);
      if (weighted) {
        result.targeted_spread = sketch->EstimateWeighted(
            result.seeds, request.target_weights, request.sketch_eval);
      }
    } else {
      McOptions mc;
      mc.num_simulations = request.mc;
      mc.seed = request.seed;
      result.spread =
          EstimateSpread(*graph_, *request.params, result.seeds, mc);
    }
  }
  result.spread_seconds = spread_timer.ElapsedSeconds();

  if (!request.node_costs.empty()) {
    for (const NodeId s : result.seeds) {
      result.total_cost += request.node_costs[s];
    }
  }

  workspace_.EnforceBudget(pre_solve_tick);
  result.workspace_bytes = workspace_.MemoryFootprintBytes();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace holim

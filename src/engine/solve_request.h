#ifndef HOLIM_ENGINE_SOLVE_REQUEST_H_
#define HOLIM_ENGINE_SOLVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "diffusion/oi_model.h"
#include "diffusion/sketch_oracle.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {

/// Which spread-estimation backend the MC-objective selectors (GREEDY,
/// CELF/CELF++) and the engine's spread evaluation use. "mc" — the paper's
/// Monte-Carlo methodology — is the default everywhere; "sketch"
/// presamples live-edge snapshots once (diffusion/sketch_oracle.*) and
/// reuses them across all evaluations (and, through the engine Workspace,
/// across successive solves on the same graph).
enum class SpreadOracle { kMonteCarlo, kSketch };

/// \brief One influence-maximization query against a HolimEngine.
///
/// The engine binds the graph at construction; a request names a
/// registered algorithm plus the model data and knobs. Fields that a given
/// algorithm does not consume are ignored (e.g. `epsilon` for EaSyIM) —
/// defaults mirror the historical per-binary defaults so that an engine
/// solve is bitwise-identical to the direct selector construction it
/// replaced.
struct SolveRequest {
  /// Registry name or alias (see AlgorithmRegistry / `holim_cli
  /// --list-algorithms`), e.g. "easyim", "tim+", "celf++".
  std::string algorithm;
  uint32_t k = 50;

  /// First-layer model parameters (required; must outlive the solve and,
  /// for warm reuse, the engine — cached artifacts key on their content).
  const InfluenceParams* params = nullptr;
  /// Opinion layer (required by opinion-aware algorithms: osim, and it
  /// switches greedy/celf/celf++ to the effective-opinion objective).
  const OpinionParams* opinions = nullptr;
  OiBase oi_base = OiBase::kIndependentCascade;
  /// Negative-opinion penalty of the MEO objective.
  double lambda = 1.0;

  /// EaSyIM/OSIM/path-union/ASIM path-length horizon.
  uint32_t l = 3;
  /// TIM+/IMM approximation slack.
  double epsilon = 0.1;
  /// TIM+/IMM RR-set safety cap (0 = uncapped).
  std::size_t max_theta = 2'000'000;
  /// DegreeDiscountIC's uniform-p assumption.
  double p = 0.1;
  /// Monte-Carlo simulations per objective evaluation / spread estimate.
  uint32_t mc = 200;
  /// RNG seed for the MC objectives, the sketch oracle, and "random".
  uint64_t seed = 42;

  SpreadOracle oracle = SpreadOracle::kMonteCarlo;
  /// Sketch-oracle snapshot count R (0 = use `mc`); only read when
  /// `oracle == kSketch`.
  uint32_t num_sketches = 0;
  /// StaticGreedy's internal snapshot count (its own sample, distinct from
  /// the shared sketch oracle by design — the algorithm owns its worlds).
  uint32_t num_snapshots = 100;
  /// Sketch-oracle traversal: the bit-parallel lane-mask kernel (default)
  /// or the per-snapshot scalar reference. Results are bitwise identical,
  /// so this never forks the cached oracle arena (it is NOT part of the
  /// sketch Workspace key) — but selectors may cache per-run state, so it
  /// IS part of the selector key.
  SketchEval sketch_eval = SketchEval::kBitParallel;

  /// EaSyIM/OSIM: dirty-frontier incremental rescore between greedy rounds
  /// instead of the paper's full O(l(m+n)) recompute. Seeds are bitwise
  /// identical either way.
  bool incremental_rescore = false;
  /// Worker threads for the sharded kernels (0 = serial). Every parallel
  /// path in the repo is bitwise thread-count-invariant, so this never
  /// changes results — it is still part of the selector cache key so a
  /// cached selector keeps the pool it was built with.
  uint32_t threads = 0;

  /// Evaluate sigma(S) of the result through the requested oracle and
  /// report it in SolveResult::spread. Off for callers that run their own
  /// evaluation sweeps (the figure benches).
  bool evaluate_spread = true;

  /// The sketch-oracle snapshot count this request implies (the 0 =
  /// mirror-mc rule, defined once: Workspace keys, factories, and CLI
  /// output must all agree on it).
  uint32_t EffectiveSketchCount() const {
    return num_sketches != 0 ? num_sketches : mc;
  }
};

/// \brief Outcome of HolimEngine::Solve: the selection plus engine-level
/// bookkeeping (artifact reuse, cache footprint, timings).
struct SolveResult {
  std::vector<NodeId> seeds;
  /// Algorithm-internal score of each chosen seed, round by round (empty
  /// if the algorithm reports none) — same as SeedSelection::seed_scores.
  std::vector<double> seed_scores;
  /// The selector's display name, e.g. "EaSyIM(l=3)".
  std::string algorithm;

  /// sigma(S) through the requested oracle; 0 when `evaluate_spread` was
  /// off.
  double spread = 0.0;

  /// Select(k) wall time as reported by the selector.
  double select_seconds = 0.0;
  /// Time spent building Workspace artifacts for this solve (0 on a fully
  /// warm solve).
  double artifact_seconds = 0.0;
  /// Time spent in the final spread evaluation.
  double spread_seconds = 0.0;
  /// End-to-end Solve() wall time.
  double total_seconds = 0.0;

  /// Best-effort RSS overhead and exact scorer scratch, forwarded from
  /// SeedSelection.
  std::size_t overhead_bytes = 0;
  std::size_t scratch_bytes = 0;

  /// True when the selector / sketch-oracle artifact was served from the
  /// Workspace instead of built for this solve.
  bool warm_selector = false;
  bool warm_sketch = false;
  /// Snapshot-arena bytes of the sketch oracle used (0 under the MC
  /// oracle). Capacity-based, the repo-wide accounting convention.
  std::size_t sketch_arena_bytes = 0;
  /// Workspace footprint after this solve (peak artifact bytes held;
  /// capacity-based).
  std::size_t workspace_bytes = 0;

  /// Algorithm-specific counters from SeedSelector::LastRunStats(), e.g.
  /// TIM+'s {"theta", "theta_capped", "rr_memory_bytes", ...}.
  std::vector<std::pair<std::string, double>> stats;

  /// First stat named `name`, or `fallback` when absent.
  double Stat(const std::string& name, double fallback = 0.0) const {
    for (const auto& [key, value] : stats) {
      if (key == name) return value;
    }
    return fallback;
  }
};

}  // namespace holim

#endif  // HOLIM_ENGINE_SOLVE_REQUEST_H_

#ifndef HOLIM_ENGINE_SOLVE_REQUEST_H_
#define HOLIM_ENGINE_SOLVE_REQUEST_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "diffusion/oi_model.h"
#include "diffusion/sketch_oracle.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/deadline.h"

namespace holim {

/// What HolimEngine::Solve does when a deadline/work budget expires or the
/// cancel token fires mid-solve.
///
///  * kFail    — return the deadline's status (kDeadlineExceeded or
///               kCancelled) as the Solve error; no partial result.
///  * kDegrade — return the best result completed so far: the selector's
///               prefix seeds when at least one greedy round finished, else
///               an instant DegreeDiscountIC fallback (see ResultTier).
///               Solve succeeds, with SolveResult::degraded = true.
enum class OnDeadline { kFail, kDegrade };

/// Quality tier of a SolveResult (meaningful mainly when degraded).
///
///  * kFull      — the algorithm ran to completion (degraded = false).
///  * kPrefix    — a deadline stopped the selector at a round boundary;
///                 `seeds` is the exact prefix the untimed run would have
///                 selected first (greedy rounds are prefix-valid).
///  * kHeuristic — no round completed before expiry; `seeds` comes from the
///                 DegreeDiscountIC fallback tier instead.
enum class ResultTier { kFull, kPrefix, kHeuristic };

/// Canonical lowercase tier name ("full", "prefix", "heuristic").
inline const char* ResultTierName(ResultTier tier) {
  switch (tier) {
    case ResultTier::kFull: return "full";
    case ResultTier::kPrefix: return "prefix";
    case ResultTier::kHeuristic: return "heuristic";
  }
  return "?";
}

/// Which spread-estimation backend the MC-objective selectors (GREEDY,
/// CELF/CELF++) and the engine's spread evaluation use. "mc" — the paper's
/// Monte-Carlo methodology — is the default everywhere; "sketch"
/// presamples live-edge snapshots once (diffusion/sketch_oracle.*) and
/// reuses them across all evaluations (and, through the engine Workspace,
/// across successive solves on the same graph).
enum class SpreadOracle { kMonteCarlo, kSketch };

/// \brief The engine's query vocabulary: what question a SolveRequest asks
/// over the bound graph. All kinds dispatch through HolimEngine::Solve and
/// share the Workspace artifacts; they differ in which request fields they
/// read and which SolveResult fields they fill.
///
///  * kTopK     — classic unconstrained top-k seed selection (the default;
///                byte-identical to the pre-query-vocabulary engine).
///  * kBudgeted — benefit-per-cost lazy greedy under a total budget:
///                reads `node_costs` (empty = uniform 1.0) and `budget`,
///                selects until no affordable node remains (at most k),
///                fills `total_cost`. With uniform unit costs and
///                budget == k the selection is bitwise-identical to kTopK.
///  * kTargeted — maximize spread over a weighted node subset: reads
///                `target_weights` (one per node), requires the sketch
///                oracle (weighted popcount per lane group), fills
///                `targeted_spread`. With all-ones weights the selection
///                and spread are bitwise-identical to kTopK.
///  * kEvaluate — no selection: score the caller-supplied `given_seeds`
///                through the requested oracle (plus the weighted spread
///                when `target_weights` is set, and `total_cost` when
///                `node_costs` is set).
///  * kExplain  — kEvaluate plus attribution: per-seed marginal
///                contributions from the sketch session bitsets, in
///                `given_seeds` order (`seed_contributions`; they
///                telescope, so their sum equals the evaluate spread
///                bitwise). Requires the sketch oracle.
enum class QueryKind { kTopK, kBudgeted, kTargeted, kEvaluate, kExplain };

/// Every query kind, in declaration order — the one list the CLI help
/// text, the capability mask printer, and the docs gate all derive from.
inline constexpr QueryKind kAllQueryKinds[] = {
    QueryKind::kTopK, QueryKind::kBudgeted, QueryKind::kTargeted,
    QueryKind::kEvaluate, QueryKind::kExplain};

/// Canonical lowercase name, as spelled by `holim_cli --query=`.
inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTopK: return "topk";
    case QueryKind::kBudgeted: return "budgeted";
    case QueryKind::kTargeted: return "targeted";
    case QueryKind::kEvaluate: return "evaluate";
    case QueryKind::kExplain: return "explain";
  }
  return "?";
}

/// \brief One influence-maximization query against a HolimEngine.
///
/// The engine binds the graph at construction; a request names a
/// registered algorithm plus the model data and knobs. Fields that a given
/// algorithm does not consume are ignored (e.g. `epsilon` for EaSyIM) —
/// defaults mirror the historical per-binary defaults so that an engine
/// solve is bitwise-identical to the direct selector construction it
/// replaced.
struct SolveRequest {
  /// Registry name or alias (see AlgorithmRegistry / `holim_cli
  /// --list-algorithms`), e.g. "easyim", "tim+", "celf++".
  std::string algorithm;
  uint32_t k = 50;

  /// Which question this request asks (see QueryKind). The algorithm must
  /// advertise the kind in its AlgorithmInfo::supported_queries mask or
  /// Solve fails with a typed Unimplemented error.
  QueryKind query = QueryKind::kTopK;
  /// kBudgeted: per-node selection cost (one entry per node, all > 0);
  /// empty = uniform cost 1.0. Also read by kEvaluate/kExplain to report
  /// `total_cost`.
  std::vector<double> node_costs;
  /// kBudgeted: total cost budget (> 0 required).
  double budget = 0.0;
  /// kTargeted: per-node spread weight (one entry per node, all >= 0,
  /// finite). Also read by kEvaluate/kExplain to score the weighted
  /// objective. Empty = untargeted.
  std::vector<double> target_weights;
  /// kEvaluate/kExplain: the caller-supplied seed set to score.
  std::vector<NodeId> given_seeds;

  /// First-layer model parameters (required; must outlive the solve and,
  /// for warm reuse, the engine — cached artifacts key on their content).
  const InfluenceParams* params = nullptr;
  /// Opinion layer (required by opinion-aware algorithms: osim, and it
  /// switches greedy/celf/celf++ to the effective-opinion objective).
  const OpinionParams* opinions = nullptr;
  OiBase oi_base = OiBase::kIndependentCascade;
  /// Negative-opinion penalty of the MEO objective.
  double lambda = 1.0;

  /// EaSyIM/OSIM/path-union/ASIM path-length horizon.
  uint32_t l = 3;
  /// TIM+/IMM approximation slack.
  double epsilon = 0.1;
  /// TIM+/IMM RR-set safety cap (0 = uncapped).
  std::size_t max_theta = 2'000'000;
  /// DegreeDiscountIC's uniform-p assumption.
  double p = 0.1;
  /// Monte-Carlo simulations per objective evaluation / spread estimate.
  uint32_t mc = 200;
  /// RNG seed for the MC objectives, the sketch oracle, and "random".
  uint64_t seed = 42;

  SpreadOracle oracle = SpreadOracle::kMonteCarlo;
  /// Sketch-oracle snapshot count R (0 = use `mc`); only read when
  /// `oracle == kSketch`.
  uint32_t num_sketches = 0;
  /// StaticGreedy's internal snapshot count (its own sample, distinct from
  /// the shared sketch oracle by design — the algorithm owns its worlds).
  uint32_t num_snapshots = 100;
  /// Sketch-oracle traversal: the bit-parallel lane-mask kernel (default)
  /// or the per-snapshot scalar reference. Results are bitwise identical,
  /// so this never forks the cached oracle arena (it is NOT part of the
  /// sketch Workspace key) — but selectors may cache per-run state, so it
  /// IS part of the selector key.
  SketchEval sketch_eval = SketchEval::kBitParallel;

  /// EaSyIM/OSIM: dirty-frontier incremental rescore between greedy rounds
  /// instead of the paper's full O(l(m+n)) recompute. Seeds are bitwise
  /// identical either way.
  bool incremental_rescore = false;
  /// Worker threads for the sharded kernels (0 = serial). Every parallel
  /// path in the repo is bitwise thread-count-invariant, so this never
  /// changes results — it is still part of the selector cache key so a
  /// cached selector keeps the pool it was built with.
  uint32_t threads = 0;

  /// Evaluate sigma(S) of the result through the requested oracle and
  /// report it in SolveResult::spread. Off for callers that run their own
  /// evaluation sweeps (the figure benches).
  bool evaluate_spread = true;

  /// Wall-clock deadline in milliseconds for this solve (0 = none). With
  /// no deadline, no budget, and no token the solve path is byte-identical
  /// to pre-deadline builds (checkpoints compile to a null-pointer test).
  double deadline_ms = 0.0;
  /// Deterministic work budget in checkpoint ticks (0 = none). Takes
  /// precedence over deadline_ms when both are set: expiry then lands at
  /// the same checkpoint on every run and machine, so degraded output is
  /// bitwise reproducible (the contract deadline_test pins).
  uint64_t work_budget = 0;
  /// Optional cooperative cancel token, polled at the same checkpoints as
  /// the deadline (borrowed; must outlive the solve). May be set alone —
  /// cancellation works without any deadline.
  const CancelToken* cancel_token = nullptr;
  /// Clock behind deadline_ms (borrowed; nullptr = the real steady clock).
  /// Tests inject a ManualClock here to fire wall deadlines on cue.
  const Clock* clock = nullptr;
  /// Expiry policy; only consulted once a deadline/budget/token actually
  /// fires. Defaults to degrade (return best-so-far) per the engine's
  /// "always answer" contract; kFail restores strict error semantics.
  OnDeadline on_deadline = OnDeadline::kDegrade;

  /// The sketch-oracle snapshot count this request implies (the 0 =
  /// mirror-mc rule, defined once: Workspace keys, factories, and CLI
  /// output must all agree on it).
  uint32_t EffectiveSketchCount() const {
    return num_sketches != 0 ? num_sketches : mc;
  }
};

/// \brief Outcome of HolimEngine::Solve: the selection plus engine-level
/// bookkeeping (artifact reuse, cache footprint, timings).
struct SolveResult {
  std::vector<NodeId> seeds;
  /// Algorithm-internal score of each chosen seed, round by round (empty
  /// if the algorithm reports none) — same as SeedSelection::seed_scores.
  std::vector<double> seed_scores;
  /// The selector's display name, e.g. "EaSyIM(l=3)".
  std::string algorithm;
  /// The query kind this result answers (copied from the request).
  QueryKind query = QueryKind::kTopK;

  /// sigma(S) through the requested oracle; 0 when `evaluate_spread` was
  /// off.
  double spread = 0.0;
  /// kBudgeted/kEvaluate/kExplain with costs: total cost of `seeds` under
  /// the request's node_costs (uniform 1.0 when they were empty).
  double total_cost = 0.0;
  /// kTargeted (and kEvaluate/kExplain with target_weights): the weighted
  /// spread sigma_w(S) over the frozen sketch worlds. With all-ones
  /// weights this is bitwise equal to `spread`.
  double targeted_spread = 0.0;
  /// kExplain: per-seed marginal contribution, in `seeds` order —
  /// contribution[i] is the (weighted, when targeted) spread gain of
  /// seeds[i] given seeds[0..i). Contributions telescope, so their sum is
  /// bitwise equal to the evaluate spread of the same seed set.
  std::vector<double> seed_contributions;

  /// Select(k) wall time as reported by the selector.
  double select_seconds = 0.0;
  /// Time spent building Workspace artifacts for this solve (0 on a fully
  /// warm solve).
  double artifact_seconds = 0.0;
  /// Time spent in the final spread evaluation.
  double spread_seconds = 0.0;
  /// End-to-end Solve() wall time.
  double total_seconds = 0.0;

  /// Best-effort RSS overhead and exact scorer scratch, forwarded from
  /// SeedSelection.
  std::size_t overhead_bytes = 0;
  std::size_t scratch_bytes = 0;

  /// True when the selector / sketch-oracle artifact was served from the
  /// Workspace instead of built for this solve.
  bool warm_selector = false;
  bool warm_sketch = false;
  /// Snapshot-arena bytes of the sketch oracle used (0 under the MC
  /// oracle). Capacity-based, the repo-wide accounting convention.
  std::size_t sketch_arena_bytes = 0;
  /// Workspace footprint after this solve (peak artifact bytes held;
  /// capacity-based).
  std::size_t workspace_bytes = 0;

  /// True when a deadline/budget/cancellation stopped this solve early and
  /// the engine degraded instead of failing (request.on_deadline ==
  /// kDegrade). `seeds` then holds the tier's best-so-far answer.
  bool degraded = false;
  /// Quality tier of `seeds` (kFull unless degraded; see ResultTier).
  ResultTier tier = ResultTier::kFull;
  /// Greedy rounds (seeds) the selector completed before expiry; equals
  /// seeds.size() for kFull/kPrefix, 0 for kHeuristic.
  uint32_t rounds_completed = 0;
  /// Human-readable cause of a degraded result, e.g. "DeadlineExceeded:
  /// work budget exhausted"; empty when not degraded.
  std::string degradation_reason;

  /// Algorithm-specific counters from SeedSelector::LastRunStats(), e.g.
  /// TIM+'s {"theta", "theta_capped", "rr_memory_bytes", ...}.
  ///
  /// Lookup contract: the engine sorts these by name ONCE per solve, so
  /// Stat() is a binary search — benches that probe several counters per
  /// round no longer pay a linear scan each. Callers that fill `stats`
  /// by hand must keep them name-sorted (or call SortStats()).
  std::vector<std::pair<std::string, double>> stats;

  /// Restores the sorted-by-name invariant `Stat` relies on (stable, so
  /// a duplicated name keeps its original relative order).
  void SortStats() {
    std::stable_sort(
        stats.begin(), stats.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  /// First stat named `name`, or `fallback` when absent. O(log #stats)
  /// over the name-sorted vector (see `stats`).
  double Stat(const std::string& name, double fallback = 0.0) const {
    const auto it = std::lower_bound(
        stats.begin(), stats.end(), name,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != stats.end() && it->first == name) return it->second;
    return fallback;
  }
};

}  // namespace holim

#endif  // HOLIM_ENGINE_SOLVE_REQUEST_H_

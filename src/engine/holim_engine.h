#ifndef HOLIM_ENGINE_HOLIM_ENGINE_H_
#define HOLIM_ENGINE_HOLIM_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "engine/registry.h"
#include "engine/solve_request.h"
#include "engine/workspace.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace holim {

struct EngineOptions {
  /// Workspace artifact budget in bytes (0 = unlimited). Enforced by LRU
  /// eviction between solves.
  std::size_t max_cache_bytes = 0;
  /// Hard budget mode (off by default): with max_cache_bytes set, an
  /// artifact admission that still exceeds the budget after one LRU
  /// evict-and-retry fails the solve with kResourceExhausted instead of
  /// keeping the cache over budget (see Workspace::set_hard_budget).
  bool hard_cache_budget = false;
};

/// \brief Long-lived facade serving influence-maximization queries over
/// one graph: `SolveRequest{algorithm, model, k, ...} -> SolveResult`.
///
/// The engine dispatches through the global AlgorithmRegistry (every
/// selector in src/algo/ registers a factory) and owns a Workspace that
/// caches the expensive artifacts — sketch-oracle arenas and stateful
/// selector instances (score-sweep tables, StaticGreedy samples) — across
/// successive solves, keyed by the *content* of the model parameters plus
/// every request knob. A warm solve is bitwise-identical to a cold one
/// (see Workspace); what it skips is sampling and allocation, which is
/// what makes a k-sweep or an algorithm-comparison batch pay those once.
///
/// ## Streaming deltas
///
/// ApplyDelta advances the engine onto an edited graph without discarding
/// the workspace wholesale: the engine owns a StreamingGraph epoch chain,
/// re-maps the caller's params onto the new EdgeIds, patches compatible
/// sketch artifacts in place (SketchOracle::ApplyDelta through
/// Workspace::ApplyGraphDelta) and evicts the rest. Cache keys carry a
/// "(base fingerprint, delta epoch)" token from the first effective delta
/// on, so artifacts can never leak across epochs even when a delta leaves
/// the params fingerprint unchanged. The correctness contract is absolute:
/// a warm solve after ApplyDelta is bitwise identical to a cold engine
/// built on the mutated graph.
///
/// Not thread-safe: one engine serves one solve at a time (shard inside a
/// solve via SolveRequest::threads). The bound graph — and any
/// InfluenceParams/OpinionParams handed to Solve — must outlive the
/// engine.
class HolimEngine {
 public:
  explicit HolimEngine(const Graph& graph, const EngineOptions& options = {});

  /// Runs one query. On success the result carries seeds, per-round
  /// scores, the oracle spread estimate (when requested), the query-kind
  /// outputs (total cost, targeted spread, per-seed contributions),
  /// timings, and artifact bookkeeping. Typed failures:
  ///  * InvalidArgument — unknown algorithm, missing opinion layer, k out
  ///    of range, or malformed query fields (bad costs/budget/weights/
  ///    given seeds for the requested QueryKind);
  ///  * Unimplemented — the algorithm does not advertise the requested
  ///    QueryKind in AlgorithmInfo::supported_queries (the engine never
  ///    silently falls back to top-k).
  /// kEvaluate/kExplain never build a selector: they score
  /// `given_seeds` straight through the oracle (explain requires the
  /// sketch oracle; its contributions come from one committed session
  /// pass over the session bitsets).
  Result<SolveResult> Solve(const SolveRequest& request);

  /// Outcome of one ApplyDelta call. `params` is the caller's params
  /// re-mapped onto the new graph's EdgeIds (copied verbatim when the
  /// delta resolved to nothing); subsequent SolveRequests must point at
  /// it (or an equal remapping), not at the pre-delta params.
  struct DeltaReport {
    uint64_t epoch = 0;        ///< streaming epoch after the call
    bool effective = false;    ///< false: delta resolved to no-op
    std::size_t inserted = 0;
    std::size_t removed = 0;
    std::size_t reweighted = 0;
    std::size_t patched_sketches = 0;   ///< artifacts patched in place
    /// Artifacts dropped: stale ones (selectors, mismatched fingerprints,
    /// failed patches) plus any budget evictions forced by patched arenas
    /// growing past max_cache_bytes (enforced here too, not only between
    /// solves).
    std::size_t evicted_artifacts = 0;
    InfluenceParams params;
  };

  /// Applies one delta batch to the engine's graph and migrates the
  /// workspace: sketch oracles built for `params` (the first-layer params
  /// the caller has been solving with, sized for the *current* graph) are
  /// patched in place; all other artifacts are evicted. InvalidArgument if
  /// `params` does not match the current graph or the batch itself is
  /// malformed (self-loop, bad probability); on error the engine is
  /// unchanged.
  Result<DeltaReport> ApplyDelta(const GraphDelta& delta,
                                 const InfluenceParams& params);

  const Graph& graph() const { return *graph_; }
  Workspace& workspace() { return workspace_; }
  const Workspace& workspace() const { return workspace_; }

  /// Streaming epoch (0 until the first effective ApplyDelta).
  uint64_t epoch() const { return streaming_ ? streaming_->epoch() : 0; }

  /// The graph-identity tag folded into workspace keys: empty at epoch 0
  /// (keys match the pre-streaming format byte for byte), otherwise
  /// "g=<base fingerprint>@<epoch>".
  std::string graph_token() const;

  /// The registry behind Solve (built-ins registered).
  static const AlgorithmRegistry& Registry() {
    return AlgorithmRegistry::Global();
  }

 private:
  /// Engine-owned pool for `threads` workers (created on first use;
  /// nullptr for 0 = serial). Owning the pools keeps cached selectors'
  /// pool pointers valid for the engine's lifetime.
  ThreadPool* PoolFor(uint32_t threads);

  /// Selector cache key: canonical algorithm + params/opinions
  /// fingerprints + every request knob except k and budget (both are
  /// call-time arguments of the selector). The query kind and the
  /// content fingerprints of node_costs / target_weights / given_seeds
  /// are folded in.
  std::string SelectorKey(const AlgorithmInfo& info,
                          const SolveRequest& request) const;

  /// The kEvaluate/kExplain path: no selector, score `given_seeds`
  /// through the oracle (sketch session for explain). `total_timer` is
  /// Solve's end-to-end timer.
  Result<SolveResult> SolveGivenSeeds(const SolveRequest& request,
                                      const Timer& total_timer);

  // Points at the caller's base graph until the first effective delta,
  // then at streaming_'s current epoch.
  const Graph* graph_;
  // Declared before workspace_ on purpose: cached selectors hold pool
  // pointers, and cached sketches reference streaming_-owned graphs, so
  // both must outlive the workspace during teardown.
  std::map<uint32_t, std::unique_ptr<ThreadPool>> pools_;
  std::unique_ptr<StreamingGraph> streaming_;  // created by first ApplyDelta
  Workspace workspace_;
};

}  // namespace holim

#endif  // HOLIM_ENGINE_HOLIM_ENGINE_H_

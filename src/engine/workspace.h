#ifndef HOLIM_ENGINE_WORKSPACE_H_
#define HOLIM_ENGINE_WORKSPACE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "diffusion/sketch_oracle.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/status.h"

namespace holim {

/// \brief Parameter-keyed cache of the expensive solve artifacts — sketch
/// oracle arenas and stateful selector instances (which in turn own RR
/// arenas, score-sweep tables, and StaticGreedy snapshot samples) — so a
/// k-sweep or an algorithm-comparison batch on one graph pays sampling
/// and state construction once.
///
/// ## Cache keys & invalidation
///
/// Keys are explicit strings built by HolimEngine from the *content*
/// fingerprint of the model parameters (FNV-1a over the probability /
/// opinion vectors — see FingerprintParams) plus every request knob that
/// can influence the artifact (RNG seed, sample budget, algorithm
/// options). A key either matches exactly — and reuse is bitwise-
/// equivalent to a cold build, because every artifact is a deterministic
/// pure function of its key (the RNG-sharding contracts of the RR engine,
/// the sketch oracle, and the sweep kernel) and every cached selector's
/// re-Select is deterministic (SeedSelector contract) — or it misses and
/// a fresh artifact is built. There is no partial/approximate reuse.
///
/// Once the engine applies a graph delta, keys additionally carry the
/// engine's graph token — "(base fingerprint, delta epoch)" — because the
/// params fingerprint alone cannot distinguish two topologies whose edge
/// counts and probability vectors happen to coincide (e.g. a delta that
/// moves an edge under uniform IC). The token is empty before the first
/// delta, keeping epoch-0 keys byte-identical to the pre-streaming format.
///
/// ## Delta patching (ApplyGraphDelta)
///
/// When the engine's graph advances an epoch, sketch artifacts built
/// against the *current* params fingerprint are patched in place via
/// SketchOracle::ApplyDelta and re-keyed under the new (fingerprint,
/// token); every other artifact — selectors (whose internal RR arenas /
/// score tables / snapshot samples reference the old graph) and sketches
/// under a different params fingerprint — is evicted. Patched reuse stays
/// bitwise-equivalent: ApplyDelta's output is pinned to the cold rebuild.
///
/// ## Budget & eviction
///
/// Each artifact is charged its capacity-based footprint (SketchOracle::
/// ArenaBytes, SeedSelector::MemoryFootprintBytes). When a byte budget is
/// set, artifacts are evicted until the total fits; HolimEngine enforces
/// the budget *between* solves AND right after ApplyDelta re-keying (a
/// patched arena can grow past the budget mid-epoch), so artifacts pinned
/// by an in-flight solve are never dropped under it (sketches are
/// additionally shared_ptr-held by their users, so eviction can never
/// dangle).
///
/// Two victim-selection policies (set_eviction_policy):
///
///  * kLru (default) — least-recently-used, the historical behavior,
///    byte-identical for every pre-serving caller.
///  * kHeatBenefit — the serving policy. Every artifact carries a decayed
///    hit counter ("heat": each touch adds 1 after halving the old value
///    once per full `heat_half_life` ticks elapsed — exactly
///    ldexp(heat, -(delta_ticks / half_life)) + 1 with integer division,
///    so decay is bit-exact on every platform) and a deterministic
///    rebuild-cost estimate (sketches: R * (nodes + edges) sampling work
///    units; selectors: their footprint bytes, a stand-in that ranks them
///    below same-heat arenas). The victim is the artifact with the lowest
///    benefit-per-byte = heat * rebuild_cost / bytes; ties break toward
///    the lexicographically smallest key, so eviction order is a pure
///    function of the access sequence — never of wall time.
///
/// Heat-policy evictions are remembered in a small "ghost" list
/// (key -> heat at eviction + bytes), which a serving layer can consult
/// (HottestGhost) to pre-warm the hottest evicted artifact once budget
/// frees up. Admitting a key clears its ghost.
///
/// Not thread-safe; an engine (and its workspace) serves one solve at a
/// time.
class Workspace {
 public:
  /// `max_bytes` 0 = unlimited.
  explicit Workspace(std::size_t max_bytes = 0) : max_bytes_(max_bytes) {}

  /// Returns the sketch oracle for `options`, building and caching it on
  /// a miss. The key is derived HERE from (params content, options,
  /// graph token) — see SketchOracleKey — so a caller cannot hand in
  /// options that disagree with the key they are cached under. `reused`
  /// (optional) reports whether the artifact was served warm.
  ///
  /// Legacy convenience wrapper over GetSketchOracleChecked: aborts the
  /// process on a failed build. Failure requires an injected fault, a
  /// deadline in `options`, or the hard byte budget — callers on this
  /// wrapper use none of those, so it cannot fire for them.
  std::shared_ptr<const SketchOracle> GetSketchOracle(
      const Graph& graph, const InfluenceParams& params,
      const SketchOptions& options, const std::string& graph_token = "",
      bool* reused = nullptr);

  /// GetSketchOracle with typed failure instead of success-or-abort:
  ///  * an armed "workspace/sketch" fault injection point fires here;
  ///  * a deadline in `options` that expires mid-sampling aborts the build
  ///    (the oracle's build_status) — the partial artifact is NOT cached;
  ///  * under a hard byte budget (set_hard_budget), an artifact that still
  ///    does not fit after one LRU evict-and-retry is dropped and
  ///    kResourceExhausted returned.
  /// Cached entries always store options with deadline = nullptr — the
  /// deadline dies with the solve that carried it.
  Result<std::shared_ptr<const SketchOracle>> GetSketchOracleChecked(
      const Graph& graph, const InfluenceParams& params,
      const SketchOptions& options, const std::string& graph_token = "",
      bool* reused = nullptr);

  /// The cached sketch under `key` (from SketchOracleKey), or nullptr —
  /// never builds and does not count as a hit/miss or LRU touch (used
  /// for reporting).
  std::shared_ptr<const SketchOracle> PeekSketchOracle(
      const std::string& key) const;

  /// Returns the cached selector for `key`, or builds one with `build`
  /// and caches it. The pointer stays valid until the entry is evicted or
  /// the workspace is cleared — i.e. for the duration of the current
  /// solve (eviction only runs between solves).
  Result<SeedSelector*> GetSelector(
      const std::string& key,
      const std::function<Result<std::unique_ptr<SeedSelector>>()>& build,
      bool* reused = nullptr);

  /// The cached selector under `key`, or nullptr — never builds. A hit
  /// refreshes the LRU stamp (it is a real use) but moves no hit/miss
  /// counter. Deadline-bounded solves reuse warm selectors through this
  /// instead of GetSelector so that a miss builds an *uncached* selector
  /// (a degraded run may leave algorithm-internal state mid-round, which
  /// must never be reused).
  SeedSelector* PeekSelector(const std::string& key);

  /// Drops the artifact under `key` (counted as an eviction). Returns
  /// whether it existed. Used to retire a cached selector after a
  /// degraded Select left its internal state mid-round.
  bool Evict(const std::string& key);

  /// Drops every artifact.
  void Clear();

  /// Outcome of ApplyGraphDelta: how many sketch artifacts were patched
  /// in place vs dropped (selectors, mismatched fingerprints, failed
  /// patches).
  struct DeltaPatchStats {
    std::size_t patched = 0;
    std::size_t evicted = 0;
  };

  /// Migrates the cache across a graph epoch: every sketch artifact whose
  /// params fingerprint equals `old_params_fp` is handed to `patch`
  /// (which should call SketchOracle::ApplyDelta) and, on success,
  /// re-keyed under (`new_params_fp`, `new_graph_token`); every other
  /// artifact is evicted. See the class comment.
  DeltaPatchStats ApplyGraphDelta(
      uint64_t old_params_fp, uint64_t new_params_fp,
      const std::string& new_graph_token,
      const std::function<Status(SketchOracle&)>& patch);

  /// Evicts artifacts until the footprint fits the budget (no-op when
  /// unlimited), picking victims per the eviction policy (LRU, or lowest
  /// benefit-per-byte under kHeatBenefit). Returns the number evicted.
  ///
  /// Entries touched after `pin_newer_than` (the working set of an
  /// in-flight or just-finished solve) are exempt from the victim scan:
  /// a cold-but-in-use artifact must not lose to a stale-hot one the
  /// moment it is admitted, or every request for a non-head key would
  /// rebuild and immediately re-evict it. When only pinned entries
  /// remain the pass stops, even over budget (same spirit as the
  /// keep-one rule below). The default pins nothing.
  std::size_t EnforceBudget(
      uint64_t pin_newer_than = std::numeric_limits<uint64_t>::max());

  /// The current LRU tick (advances on every touch/admission). Callers
  /// snapshot it before a solve to pin that solve's working set in a
  /// later EnforceBudget pass.
  uint64_t tick() const { return tick_; }

  void set_max_bytes(std::size_t max_bytes) { max_bytes_ = max_bytes; }
  std::size_t max_bytes() const { return max_bytes_; }

  /// Victim-selection policy (see the class comment). Switching policy
  /// only changes *which* artifact EnforceBudget drops next; hit/miss
  /// behavior and artifact contents are identical under both.
  enum class EvictionPolicy { kLru, kHeatBenefit };
  void set_eviction_policy(EvictionPolicy policy) { policy_ = policy; }
  EvictionPolicy eviction_policy() const { return policy_; }

  /// Heat half-life in LRU ticks (every Touch/admission is one tick): a
  /// key's heat halves once per `ticks` elapsed ticks, by integer-counted
  /// halvings (bit-exact ldexp, no libm). Must be > 0.
  void set_heat_half_life(uint64_t ticks) { heat_half_life_ = ticks; }
  uint64_t heat_half_life() const { return heat_half_life_; }

  /// The decayed heat of `key` as of the current tick (0 when absent).
  /// Read-only: no LRU touch, no decay state mutation.
  double HeatOf(const std::string& key) const;

  /// The kHeatBenefit eviction score of `key`:
  /// heat * rebuild_cost_estimate / bytes (0 when absent). Lowest goes
  /// first.
  double BenefitPerByte(const std::string& key) const;

  /// One remembered heat-policy eviction, for pre-warm decisions.
  struct GhostEntry {
    double heat = 0.0;       ///< decayed heat at eviction time
    std::size_t bytes = 0;   ///< footprint the rebuild would re-admit
  };

  /// The ghost list: keys evicted under kHeatBenefit that have not been
  /// re-admitted since, capped at the hottest kMaxGhosts.
  const std::map<std::string, GhostEntry>& ghosts() const { return ghosts_; }

  /// The hottest ghost key (ties: smallest key), or "" when none. The
  /// serving layer pre-warms this once headroom covers its bytes.
  std::string HottestGhost() const;

  /// Drops `key` from the ghost list (after a pre-warm, or to give up on
  /// it).
  void ForgetGhost(const std::string& key) { ghosts_.erase(key); }

  /// Hard budget mode (off by default): with a byte budget set, an
  /// artifact admission that still exceeds the budget after one LRU
  /// evict-and-retry FAILS with kResourceExhausted instead of being kept
  /// over budget. Only GetSketchOracleChecked/GetSelector enforce this;
  /// the default soft mode keeps the historical keep-at-least-one
  /// behavior bit for bit.
  void set_hard_budget(bool hard) { hard_budget_ = hard; }
  bool hard_budget() const { return hard_budget_; }

  /// Exact cache footprint: sum of per-artifact capacity-based bytes
  /// (refreshed on every use — selector scratch can grow during Select).
  std::size_t MemoryFootprintBytes() const;

  std::size_t num_artifacts() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    // Exactly one of the two is set, matching the key's kind. Sketches
    // are held non-const so ApplyGraphDelta can patch them in place;
    // GetSketchOracle still hands out const views.
    std::shared_ptr<SketchOracle> sketch;
    std::unique_ptr<SeedSelector> selector;
    uint64_t last_used = 0;
    // kHeatBenefit state: decayed hit counter (heat as of heat_tick) and
    // the deterministic rebuild-cost estimate set at build time.
    double heat = 0.0;
    uint64_t heat_tick = 0;
    double rebuild_cost = 0.0;
    // Sketch-entry metadata mirrored out of the key so ApplyGraphDelta
    // can match and re-key entries without parsing key strings.
    uint64_t params_fp = 0;
    std::string graph_token;
    SketchOptions options;

    std::size_t FootprintBytes() const {
      if (sketch) return sketch->ArenaBytes();
      return selector->MemoryFootprintBytes();
    }
  };

  Entry* Touch(const std::string& key);
  /// Hard-budget admission check for an artifact of `incoming_bytes` about
  /// to be cached: evict-and-retry once, then OK or kResourceExhausted.
  Status AdmitBytes(std::size_t incoming_bytes);
  /// `entry`'s heat decayed to `now` (pure; no state change).
  double DecayedHeat(const Entry& entry, uint64_t now) const;
  /// Erases `it`, recording a ghost under kHeatBenefit.
  void EvictEntry(std::map<std::string, Entry>::iterator it);

  static constexpr std::size_t kMaxGhosts = 32;

  std::map<std::string, Entry> entries_;
  std::map<std::string, GhostEntry> ghosts_;
  std::size_t max_bytes_ = 0;
  bool hard_budget_ = false;
  EvictionPolicy policy_ = EvictionPolicy::kLru;
  uint64_t heat_half_life_ = 64;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Content fingerprint of the first-layer model (FNV-1a over the model
/// kind and the probability vector) — the params component of every
/// Workspace key. Exact: any parameter change changes the key and misses
/// the cache.
uint64_t FingerprintParams(const InfluenceParams& params);

/// Content fingerprint of the opinion layer (initial opinions +
/// interaction probabilities).
uint64_t FingerprintOpinions(const OpinionParams& opinions);

/// Content fingerprint of an arbitrary double vector — the query-family
/// request fields (node costs, target weights) folded into Workspace keys.
/// Same FNV-1a-over-representation convention as FingerprintParams: any
/// bit-level change misses the cache.
uint64_t FingerprintDoubles(const std::vector<double>& values);

/// Content fingerprint of a node-id vector (kEvaluate/kExplain given
/// seed sets). Order-sensitive, matching explain's order-dependent
/// contributions.
uint64_t FingerprintNodes(const std::vector<NodeId>& nodes);

/// Canonical workspace key of a sketch-oracle artifact — shared by the
/// engine's spread evaluation and the greedy/CELF factories so one arena
/// serves both. `graph_token` is the engine's "(base fingerprint, delta
/// epoch)" tag; empty (the default, and always at epoch 0) appends
/// nothing, keeping pre-streaming keys byte-identical.
std::string SketchOracleKey(uint64_t params_fingerprint, uint32_t snapshots,
                            uint64_t seed, bool record_edge_offsets,
                            const std::string& graph_token = "");

}  // namespace holim

#endif  // HOLIM_ENGINE_WORKSPACE_H_

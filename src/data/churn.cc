#include "data/churn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/graph_builder.h"
#include "util/rng.h"

namespace holim {

namespace {

/// Cosine-like similarity of two attribute vectors mapped into [0, 1].
double AttributeSimilarity(const std::vector<double>& a,
                           const std::vector<double>& b, uint32_t dims,
                           std::size_t ia, std::size_t ib) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (uint32_t d = 0; d < dims; ++d) {
    const double x = a[ia * dims + d];
    const double y = b[ib * dims + d];
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return 0.5 * (1.0 + dot / std::sqrt(na * nb));
}

}  // namespace

Result<ChurnData> BuildChurnData(const ChurnOptions& options) {
  if (options.num_customers < 100) {
    return Status::InvalidArgument("need >= 100 customers");
  }
  Rng rng(options.seed);
  const uint32_t n = options.num_customers;
  const uint32_t dims = options.num_attributes;
  ChurnData data;

  // 1. Latent churn propensity drives attributes and the label. Balanced
  // classes: first half churners, second half non-churners (shuffled ids
  // are unnecessary since the graph is built from attributes alone).
  std::vector<double> propensity(n);
  data.is_churner.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    const bool churner = i < n / 2;
    data.is_churner[i] = churner;
    propensity[i] = churner ? rng.Uniform(0.3, 1.0) : rng.Uniform(-1.0, -0.3);
  }
  std::vector<double> attributes(static_cast<std::size_t>(n) * dims);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t d = 0; d < dims; ++d) {
      // Half the attributes correlate with propensity, half are noise —
      // the "billing/usage/complaints" mix of the original data.
      const double signal = (d % 2 == 0) ? propensity[i] : 0.0;
      attributes[static_cast<std::size_t>(i) * dims + d] =
          signal + 0.6 * rng.NextGaussian();
    }
  }

  // 2. Similarity graph by sampled candidate pairs (exhaustive O(n^2) pair
  // scanning is unnecessary: we sample until the target degree is met,
  // keeping pairs above the similarity threshold).
  const double threshold = 0.62;
  GraphBuilder builder(n);
  std::vector<double> similarities;
  const uint64_t target_arcs =
      static_cast<uint64_t>(options.target_avg_degree * n);
  uint64_t attempts = 0;
  const uint64_t max_attempts = target_arcs * 40;
  std::vector<std::pair<NodeId, NodeId>> kept;
  while (kept.size() * 2 < target_arcs && attempts < max_attempts) {
    ++attempts;
    const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    if (a == b) continue;
    const double sim =
        AttributeSimilarity(attributes, attributes, dims, a, b);
    if (sim < threshold) continue;
    kept.emplace_back(a, b);
  }
  for (auto [a, b] : kept) builder.AddUndirectedEdge(a, b);
  HOLIM_ASSIGN_OR_RETURN(data.graph, std::move(builder).Build());

  // Influence probability = similarity, recomputed per final edge (dedup
  // may have dropped duplicates, so align with the built graph).
  data.influence.model = DiffusionModel::kIndependentCascade;
  data.influence.probability.resize(data.graph.num_edges());
  for (NodeId u = 0; u < data.graph.num_nodes(); ++u) {
    const EdgeId base = data.graph.OutEdgeBegin(u);
    auto neighbors = data.graph.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      // Scale similarity into [0, max_influence].
      data.influence.probability[base + i] =
          options.max_influence *
          (AttributeSimilarity(attributes, attributes, dims, u,
                               neighbors[i]) -
           threshold) /
          (1.0 - threshold);
    }
  }

  // 3. Label propagation: labelled nodes clamp to +/-1; others average
  // their neighbors each sweep.
  data.is_labelled.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    data.is_labelled[i] = rng.NextBernoulli(options.labelled_fraction);
  }
  std::vector<double> value(n, 0.0), next(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    if (data.is_labelled[i]) value[i] = data.is_churner[i] ? -1.0 : 1.0;
  }
  for (uint32_t iter = 0; iter < options.label_prop_iterations; ++iter) {
    double max_change = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (data.is_labelled[u]) {
        next[u] = value[u];  // clamped
        continue;
      }
      double acc = 0.0;
      uint32_t count = 0;
      for (NodeId v : data.graph.InNeighbors(u)) {
        acc += value[v];
        ++count;
      }
      next[u] = count > 0 ? acc / count : 0.0;
      max_change = std::max(max_change, std::abs(next[u] - value[u]));
    }
    std::swap(value, next);
    if (max_change < 1e-6) break;
  }

  // NOTE on orientation: the paper labels churners -1; the MEO objective
  // then *protects reputation* by spreading positive (stay) opinion.
  data.opinions.opinion = value;
  data.opinions.interaction.resize(data.graph.num_edges());
  for (auto& phi : data.opinions.interaction) phi = rng.NextDouble();

  // Hold-out sign accuracy over unlabelled nodes with nonzero value.
  uint64_t correct = 0, total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (data.is_labelled[i] || value[i] == 0.0) continue;
    ++total;
    const bool predicted_churn = value[i] < 0.0;
    if (predicted_churn == static_cast<bool>(data.is_churner[i])) ++correct;
  }
  data.holdout_sign_accuracy =
      total > 0 ? static_cast<double>(correct) / total : 0.0;
  return data;
}

}  // namespace holim

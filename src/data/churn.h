#ifndef HOLIM_DATA_CHURN_H_
#define HOLIM_DATA_CHURN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/status.h"

namespace holim {

/// \brief Synthetic stand-in for the paper's PAKDD-2012 churn experiment
/// (Sec. 4.1.2).
///
/// The original is a telco customer dataset (billing/usage/complaints +
/// churn labels). This module synthesizes an equivalent population and
/// reproduces the paper's full pipeline:
///
///  1. Customer profiles with correlated numeric attributes; a latent churn
///     propensity drives both the attributes and the binary churn label
///     (balanced churners/non-churners, as the paper subsampled).
///  2. A similarity graph: edges between customers whose attribute-vector
///     similarity exceeds a threshold; the similarity value becomes the
///     influence probability p of the edge.
///  3. Label propagation from the labelled nodes (churn = -1, stay = +1)
///     until convergence; the converged value in [-1, 1] is the node's
///     opinion o (affinity to churn).
///  4. Interaction probabilities phi ~ rand(0, 1) (paper's choice).
struct ChurnOptions {
  uint32_t num_customers = 34'000;   // paper's balanced subset size
  uint32_t num_attributes = 12;
  /// Target mean degree of the similarity graph (paper: 34K nodes, 1.5M
  /// edges => ~44 per node as arcs both ways).
  double target_avg_degree = 44.0;
  /// Upper bound of the similarity-derived influence probability. The
  /// default keeps cascades near-critical (R0 ~ 1) so that seed placement
  /// matters, matching the additive-spread regime of the paper's Fig. 5d;
  /// raising it toward 0.4 makes the graph percolate from a single seed.
  double max_influence = 0.05;
  /// Fraction of nodes whose labels are observed by label propagation.
  double labelled_fraction = 0.5;
  uint32_t label_prop_iterations = 50;
  uint64_t seed = 2012;
};

/// The induced opinion-annotated churn graph.
struct ChurnData {
  Graph graph;
  InfluenceParams influence;  // p = attribute similarity
  OpinionParams opinions;     // o = label-propagation output, phi ~ U(0,1)
  std::vector<char> is_churner;     // ground-truth label per node
  std::vector<char> is_labelled;    // visible to label propagation
  /// Fraction of held-out nodes whose opinion sign matches their label
  /// (sanity metric for the label-propagation model).
  double holdout_sign_accuracy = 0.0;
};

Result<ChurnData> BuildChurnData(const ChurnOptions& options);

}  // namespace holim

#endif  // HOLIM_DATA_CHURN_H_

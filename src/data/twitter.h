#ifndef HOLIM_DATA_TWITTER_H_
#define HOLIM_DATA_TWITTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"
#include "model/opinion_params.h"
#include "util/status.h"

namespace holim {

/// \brief Synthetic stand-in for the paper's Twitter experiment (Sec. 4.1.1).
///
/// The paper crawled 476M tweets + the follower graph, extracted
/// topic-focussed subgraphs per hashtag, ran a sentiment classifier to get
/// per-user opinions, and estimated interaction probabilities from past
/// agreement rates. None of that data ships here, so this module builds a
/// *generative* equivalent that exercises the identical downstream code
/// path:
///
///  1. A background follower graph (power-law, directed).
///  2. Latent per-user topic attitudes; a tweet stream per topic is emitted
///     by cascading over the background graph with opinion+interaction
///     dynamics — the *ground truth* diffusion process.
///  3. Topic subgraphs are grown from the tweet stream exactly as the paper
///     describes: nodes appear when they tweet; edges appear when both
///     endpoints tweeted and the background edge exists; in-degree-0 nodes
///     are the topic's originators (seeds).
///  4. A noisy "sentiment classifier" recovers opinions from tweets
///     (Gaussian noise on the latent attitude); interaction probabilities
///     are estimated from cross-topic agreement counts.
///
/// Because the ground truth really is an opinion+interaction cascade, a
/// model that captures both (OI) should predict the held-out opinion spread
/// better than OC (no interaction) or IC (no opinions) — the paper's
/// Figs. 5a/5b claim, reproduced by bench/fig5a and bench/fig5b.
struct TwitterCorpusOptions {
  NodeId num_users = 20'000;
  uint32_t follower_edges_per_user = 8;
  uint32_t num_topics = 20;
  /// Expected seeds (originators) per topic.
  uint32_t originators_per_topic = 12;
  /// Uniform influence probability of the ground-truth cascade layer.
  double influence_probability = 0.12;
  /// Std-dev of the sentiment classifier's noise (paper reports 3.4-8.6%
  /// opinion-estimation error; 0.08 reproduces that band).
  double classifier_noise = 0.08;
  uint64_t seed = 2016;
};

/// One topic's materialized data.
struct TopicData {
  std::string hashtag;
  /// Subgraph ids are background-graph node ids (projection retained).
  InducedSubgraph subgraph;
  /// Originators (in-degree 0 in the topic subgraph), in subgraph ids.
  std::vector<NodeId> originators;
  /// Ground-truth final opinion per *activated* subgraph node, NaN if the
  /// node never tweeted an opinionated message.
  std::vector<double> ground_truth_opinion;  // indexed by subgraph NodeId
  /// Ground-truth opinion spread of the topic cascade (sum over activated
  /// non-originators).
  double ground_truth_spread = 0.0;
};

/// The full corpus: background graph + per-topic data + estimated params.
struct TwitterCorpus {
  Graph background;
  /// Opinions estimated by the noisy classifier + interaction estimated
  /// from cross-topic agreement — the OI parameters a practitioner would
  /// have (indexed by background ids).
  OpinionParams estimated;
  /// Latent true attitudes (for error measurement only).
  std::vector<double> latent_opinion;
  std::vector<TopicData> topics;
  /// Opinion-estimation errors the paper reports (Sec. 4.1.1).
  double seed_opinion_error = 0.0;      // paper: 3.43%
  double nonseed_opinion_error = 0.0;   // paper: 8.57%
};

/// Builds the corpus. Deterministic in options.seed.
Result<TwitterCorpus> BuildTwitterCorpus(const TwitterCorpusOptions& options);

}  // namespace holim

#endif  // HOLIM_DATA_TWITTER_H_

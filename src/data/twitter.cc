#include "data/twitter.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "diffusion/independent_cascade.h"
#include "diffusion/oi_model.h"
#include "graph/generators.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {

namespace {

/// Latent attitude of user u towards topic t: a mixture of a per-user bias
/// and a per-(user, topic) component, clamped to [-1, 1].
double LatentAttitude(double user_bias, double topic_shift, double noise) {
  return ClampOpinion(0.6 * user_bias + 0.3 * topic_shift + noise);
}

}  // namespace

Result<TwitterCorpus> BuildTwitterCorpus(const TwitterCorpusOptions& options) {
  if (options.num_topics == 0 || options.num_users < 100) {
    return Status::InvalidArgument("need >=100 users and >=1 topic");
  }
  Rng rng(options.seed);
  TwitterCorpus corpus;

  // 1. Background follower graph (directed power-law).
  HOLIM_ASSIGN_OR_RETURN(
      corpus.background,
      GenerateBarabasiAlbert(options.num_users,
                             options.follower_edges_per_user,
                             rng.Next64(), /*undirected=*/false));
  const Graph& bg = corpus.background;

  // Per-user bias and true pairwise agreement propensity.
  corpus.latent_opinion.resize(bg.num_nodes());
  for (auto& o : corpus.latent_opinion) o = rng.Uniform(-1.0, 1.0);
  std::vector<double> true_phi(bg.num_edges());
  for (auto& phi : true_phi) phi = rng.NextDouble();

  InfluenceParams influence =
      MakeUniformIc(bg, options.influence_probability);

  // Agreement bookkeeping for interaction estimation (step 4).
  std::vector<uint32_t> agree_count(bg.num_edges(), 0);
  std::vector<uint32_t> meet_count(bg.num_edges(), 0);

  // Opinion-estimation error bookkeeping.
  double seed_err_acc = 0.0, nonseed_err_acc = 0.0;
  uint64_t seed_err_n = 0, nonseed_err_n = 0;

  // Estimated opinion = average of classifier readings across topics.
  std::vector<double> est_opinion_acc(bg.num_nodes(), 0.0);
  std::vector<uint32_t> est_opinion_n(bg.num_nodes(), 0);

  corpus.topics.reserve(options.num_topics);
  for (uint32_t t = 0; t < options.num_topics; ++t) {
    const double topic_shift = rng.Uniform(-0.5, 0.5);

    // 2. Ground-truth cascade: originators tweet first; diffusion follows
    // opinion+interaction dynamics (an OI-over-IC process by construction).
    std::vector<NodeId> originators;
    for (uint32_t s = 0; s < options.originators_per_topic; ++s) {
      originators.push_back(
          static_cast<NodeId>(rng.NextBounded(bg.num_nodes())));
    }
    std::sort(originators.begin(), originators.end());
    originators.erase(std::unique(originators.begin(), originators.end()),
                      originators.end());

    // Per-topic latent opinions for all users.
    std::vector<double> topic_opinion(bg.num_nodes());
    for (NodeId u = 0; u < bg.num_nodes(); ++u) {
      topic_opinion[u] = LatentAttitude(corpus.latent_opinion[u], topic_shift,
                                        rng.Uniform(-0.1, 0.1));
    }
    OpinionParams truth;
    truth.opinion = topic_opinion;
    truth.interaction = true_phi;
    OiSimulator ground_truth_sim(bg, influence, truth,
                                 OiBase::kIndependentCascade);
    Rng cascade_rng = rng.Split(t);
    const OpinionCascade& cascade =
        ground_truth_sim.Run(originators, cascade_rng);

    // 3. Topic subgraph: activated users are "those who tweeted".
    std::vector<NodeId> tweeters;
    tweeters.reserve(cascade.cascade->order.size());
    for (const Activation& a : cascade.cascade->order) {
      tweeters.push_back(a.node);
    }
    TopicData topic;
    topic.hashtag = "#topic" + std::to_string(t);
    HOLIM_ASSIGN_OR_RETURN(topic.subgraph,
                           ExtractInducedSubgraph(bg, tweeters));
    const Graph& sub = topic.subgraph.graph;

    // Originators = in-degree-0 nodes of the topic subgraph (paper's rule);
    // the true originators that stayed isolated also qualify.
    for (NodeId u = 0; u < sub.num_nodes(); ++u) {
      if (sub.InDegree(u) == 0) topic.originators.push_back(u);
    }
    if (topic.originators.empty()) topic.originators.push_back(0);

    // Ground-truth opinions per subgraph node.
    topic.ground_truth_opinion.assign(
        sub.num_nodes(), std::numeric_limits<double>::quiet_NaN());
    std::vector<char> is_originator(sub.num_nodes(), 0);
    for (NodeId o : topic.originators) is_originator[o] = 1;
    for (std::size_t i = 0; i < cascade.cascade->order.size(); ++i) {
      const NodeId bg_node = cascade.cascade->order[i].node;
      const NodeId sub_node = topic.subgraph.to_subgraph[bg_node];
      if (sub_node == kInvalidNode) continue;
      topic.ground_truth_opinion[sub_node] = cascade.final_opinion[i];
      if (!is_originator[sub_node]) {
        topic.ground_truth_spread += cascade.final_opinion[i];
      }
    }

    // 4a. Noisy sentiment classifier readings -> opinion estimates.
    // A user's tweets mostly restate their personal opinion, with some
    // leakage of the influence-mixed (final) opinion — this is what gives
    // the paper's error asymmetry (seeds 3.43% vs non-seeds 8.57%): for
    // seeds final == personal, so only classifier noise remains.
    for (std::size_t i = 0; i < cascade.cascade->order.size(); ++i) {
      const NodeId bg_node = cascade.cascade->order[i].node;
      const double reading = ClampOpinion(
          0.7 * topic_opinion[bg_node] + 0.3 * cascade.final_opinion[i] +
          options.classifier_noise * rng.NextGaussian());
      est_opinion_acc[bg_node] += reading;
      ++est_opinion_n[bg_node];
      const bool is_seed = cascade.cascade->order[i].via_edge ==
                           kSeedActivation;
      const double err = std::abs(reading - cascade.final_opinion[i]);
      if (is_seed) {
        seed_err_acc += err;
        ++seed_err_n;
      } else {
        // Non-seed tweets mix personal opinion with network influence: the
        // estimation target is the *personal* opinion, so the error also
        // includes the influence-induced shift (paper's observation).
        nonseed_err_acc += std::abs(reading - topic_opinion[bg_node]);
        ++nonseed_err_n;
      }
    }

    // 4b. Agreement counting over subgraph edges for phi estimation.
    for (NodeId su = 0; su < sub.num_nodes(); ++su) {
      const NodeId bu = topic.subgraph.to_original[su];
      const EdgeId sub_base = sub.OutEdgeBegin(su);
      auto sub_neighbors = sub.OutNeighbors(su);
      for (std::size_t i = 0; i < sub_neighbors.size(); ++i) {
        const NodeId bv = topic.subgraph.to_original[sub_neighbors[i]];
        (void)bv;
        const EdgeId bg_edge =
            topic.subgraph.edge_to_original[sub_base + i];
        const double ou = topic.ground_truth_opinion[su];
        const double ov = topic.ground_truth_opinion[sub_neighbors[i]];
        if (std::isnan(ou) || std::isnan(ov)) continue;
        ++meet_count[bg_edge];
        if ((ou >= 0) == (ov >= 0)) ++agree_count[bg_edge];
      }
      (void)bu;
    }

    corpus.topics.push_back(std::move(topic));
  }

  // Final estimated parameters on the background graph.
  corpus.estimated.opinion.resize(bg.num_nodes());
  for (NodeId u = 0; u < bg.num_nodes(); ++u) {
    corpus.estimated.opinion[u] =
        est_opinion_n[u] > 0 ? est_opinion_acc[u] / est_opinion_n[u]
                             : corpus.latent_opinion[u] * 0.0;
  }
  corpus.estimated.interaction.resize(bg.num_edges());
  for (EdgeId e = 0; e < bg.num_edges(); ++e) {
    corpus.estimated.interaction[e] =
        meet_count[e] > 0
            ? static_cast<double>(agree_count[e]) / meet_count[e]
            : 0.5;  // uninformative prior when the pair never co-tweeted
  }
  corpus.seed_opinion_error =
      seed_err_n > 0 ? seed_err_acc / seed_err_n : 0.0;
  corpus.nonseed_opinion_error =
      nonseed_err_n > 0 ? nonseed_err_acc / nonseed_err_n : 0.0;
  return corpus;
}

}  // namespace holim

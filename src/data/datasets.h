#ifndef HOLIM_DATA_DATASETS_H_
#define HOLIM_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace holim {

/// \brief Registry of synthetic stand-ins for the paper's Table 2 datasets.
///
/// The originals are SNAP/arXiv crawls that are not shipped with this repo;
/// each stand-in is generated to match the original's shape: node/edge
/// count (scaled by `scale` in (0, 1]), directedness, and a heavy-tailed
/// degree distribution (Barabási–Albert for the undirected collaboration /
/// social graphs, RMAT for the directed follower graphs). Real SNAP edge
/// lists can be substituted via ReadEdgeList() without code changes.
struct DatasetSpec {
  std::string name;
  NodeId paper_nodes;       // n reported in Table 2
  EdgeId paper_edges;       // m reported in Table 2
  bool directed;            // Table 2 "Type"
  double paper_avg_degree;  // Table 2 "Avg. Degree"
  double paper_diameter90;  // Table 2 "90-%ile Diameter"
};

/// All eight Table 2 rows, in paper order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Looks up a spec by name ("NetHEPT", "HepPh", "DBLP", "YouTube",
/// "SocLiveJournal", "Orkut", "Twitter", "Friendster").
Result<DatasetSpec> FindDatasetSpec(const std::string& name);

/// Materializes the synthetic stand-in at `scale` (1.0 = paper size; the
/// benches default to smaller scales so they finish on commodity hardware —
/// EXPERIMENTS.md records the scales used). Deterministic in (name, scale).
Result<Graph> LoadSyntheticDataset(const std::string& name, double scale = 1.0);

/// Convenience: the four "medium" datasets used throughout Sec. 4
/// (NetHEPT, HepPh, DBLP, YouTube).
std::vector<std::string> MediumDatasetNames();

/// The four "large" datasets of Fig. 7j.
std::vector<std::string> LargeDatasetNames();

}  // namespace holim

#endif  // HOLIM_DATA_DATASETS_H_

#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"

namespace holim {

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  // Table 2 of the paper. Undirected rows report undirected edge counts;
  // the loader doubles arcs for those, as the paper does.
  static const std::vector<DatasetSpec>* specs = new std::vector<DatasetSpec>{
      {"NetHEPT", 15'000, 62'000, false, 4.1, 8.8},
      {"HepPh", 12'000, 237'000, false, 19.75, 5.8},
      {"DBLP", 317'000, 2'100'000, false, 6.63, 8.0},
      {"YouTube", 1'130'000, 5'980'000, false, 5.29, 6.5},
      {"SocLiveJournal", 4'850'000, 69'000'000, true, 14.23, 6.5},
      {"Orkut", 3'070'000, 234'200'000, false, 76.29, 4.8},
      {"Twitter", 41'600'000, 1'500'000'000, true, 36.06, 5.1},
      {"Friendster", 65'600'000, 3'600'000'000, false, 54.88, 5.8},
  };
  return *specs;
}

Result<DatasetSpec> FindDatasetSpec(const std::string& name) {
  for (const auto& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

std::vector<std::string> MediumDatasetNames() {
  return {"NetHEPT", "HepPh", "DBLP", "YouTube"};
}

std::vector<std::string> LargeDatasetNames() {
  return {"SocLiveJournal", "Orkut", "Twitter", "Friendster"};
}

Result<Graph> LoadSyntheticDataset(const std::string& name, double scale) {
  HOLIM_ASSIGN_OR_RETURN(DatasetSpec spec, FindDatasetSpec(name));
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const NodeId n =
      std::max<NodeId>(64, static_cast<NodeId>(spec.paper_nodes * scale));
  const EdgeId m =
      std::max<EdgeId>(128, static_cast<EdgeId>(spec.paper_edges * scale));
  // Deterministic per-dataset seed.
  uint64_t seed = 0xC0FFEE;
  for (char c : name) seed = seed * 131 + static_cast<unsigned char>(c);

  if (spec.directed) {
    // Directed follower graphs: RMAT with skewed quadrants.
    const uint32_t sc =
        static_cast<uint32_t>(std::ceil(std::log2(static_cast<double>(n))));
    RmatOptions rmat;
    rmat.undirected = false;
    return GenerateRmat(std::min(sc, 26u), m, seed, rmat);
  }
  // Undirected collaboration/social graphs: heterogeneous preferential
  // attachment whose mean attachment matches the dataset's average degree.
  // (Plain BA would give every node the mean degree as a *minimum*, making
  // IC cascades saturate the graph — unlike the real SNAP datasets.)
  const double per_node = std::max(
      1.0, static_cast<double>(m) / static_cast<double>(n));
  return GenerateSocialGraph(n, per_node, seed, /*undirected=*/true);
}

}  // namespace holim

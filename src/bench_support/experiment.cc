#include "bench_support/experiment.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "util/string_util.h"

namespace holim {

Status BenchArgs::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    bool known = name == "help";
    for (const auto& [declared, _] : declared_) {
      if (declared == name) {
        known = true;
        break;
      }
    }
    if (!known) return Status::InvalidArgument("unknown flag: --" + name);
    values_[name] = value;
  }
  return Status::OK();
}

double BenchArgs::GetDouble(const std::string& name,
                            double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stod(it->second);
}

int64_t BenchArgs::GetInt(const std::string& name,
                          int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stoll(it->second);
}

std::string BenchArgs::GetString(const std::string& name,
                                 const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool BenchArgs::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1";
}

void BenchArgs::Declare(const std::string& name, const std::string& help) {
  declared_.emplace_back(name, help);
}

std::string BenchArgs::HelpText(const std::string& binary) const {
  std::string out = "Usage: " + binary + " [flags]\n";
  for (const auto& [name, help] : declared_) {
    out += "  --" + name + ": " + help + "\n";
  }
  return out;
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns,
                         const std::string& csv_path)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (!csv_path.empty()) {
    csv_ = std::make_unique<CsvWriter>(csv_path);
    csv_->WriteHeader(columns_);
  }
}

void ResultTable::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  if (csv_) csv_->WriteRow(cells);
}

void ResultTable::AddNumericRow(const std::string& label,
                                const std::vector<double>& values) {
  std::vector<std::string> cells = {label};
  for (double v : values) cells.push_back(CsvWriter::Num(v));
  AddRow(cells);
}

void ResultTable::Print() const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string ResultsDir() {
  const std::string dir = "results";
  ::mkdir(dir.c_str(), 0755);  // idempotent
  return dir;
}

void DeclareCommonFlags(BenchArgs* args) {
  args->Declare("scale", "dataset scale factor vs paper size (default 0.2)");
  args->Declare("mc", "Monte-Carlo simulations per estimate (default 200)");
  args->Declare("max_k", "largest seed-set size (default 100)");
  args->Declare("seed", "global RNG seed (default 42)");
}

void DeclareCommonOptions(BenchArgs* args, const CommonOptionsSpec& spec) {
  if (spec.oracle) {
    args->Declare("oracle",
                  "spread oracle for MC-objective selectors and spread "
                  "evaluation: mc | sketch (default mc, the paper's "
                  "methodology; sketch reuses presampled live-edge "
                  "snapshots)");
    args->Declare("sketch-eval",
                  "sketch-oracle traversal: bitparallel | scalar (default "
                  "bitparallel, 64 live-edge worlds per machine word; "
                  "scalar walks one snapshot at a time — results are "
                  "bitwise identical either way)");
  }
  if (spec.rescore_default != nullptr) {
    args->Declare("rescore",
                  std::string("EaSyIM/OSIM score path between greedy "
                              "rounds: incremental | full (default ") +
                      spec.rescore_default + ")");
  }
  if (spec.threads) {
    args->Declare("threads",
                  "worker threads for the sharded kernels (0 = serial; "
                  "results are bitwise thread-count-invariant)");
  }
  if (spec.query) {
    std::string choices;
    for (const QueryKind kind : kAllQueryKinds) {
      if (!choices.empty()) choices += " | ";
      choices += QueryKindName(kind);
    }
    args->Declare("query",
                  "query kind: " + choices +
                      " (default topk — byte-identical to the "
                      "pre-query-vocabulary invocation)");
    args->Declare("budget",
                  "[--query=budgeted] total cost budget (> 0 required)");
    args->Declare("costs",
                  "[--query=budgeted] per-node cost source: uniform | "
                  "degree | <file with one cost per node> (default "
                  "uniform 1.0)");
    args->Declare("targets",
                  "[--query=targeted] target set: twitter-topic[:i] "
                  "(topic i of a Twitter corpus over this graph) | <file "
                  "of node ids> — weight 1.0 on members, 0 elsewhere");
    args->Declare("seeds",
                  "[--query=evaluate|explain] comma-separated node ids "
                  "of the seed set to score");
  }
}

Result<CommonOptions> ParseCommonOptions(const BenchArgs& args,
                                         const CommonOptionsSpec& spec) {
  CommonOptions options;
  if (spec.oracle) {
    const std::string oracle = args.GetString("oracle", "mc");
    if (oracle == "sketch") {
      options.oracle = SpreadOracle::kSketch;
    } else if (oracle != "mc") {
      return Status::InvalidArgument("unknown --oracle (mc|sketch): " +
                                     oracle);
    }
    const std::string eval = args.GetString("sketch-eval", "bitparallel");
    if (eval == "scalar") {
      options.sketch_eval = SketchEval::kScalar;
    } else if (eval != "bitparallel") {
      return Status::InvalidArgument(
          "unknown --sketch-eval (bitparallel|scalar): " + eval);
    }
  }
  if (spec.rescore_default != nullptr) {
    const std::string rescore =
        args.GetString("rescore", spec.rescore_default);
    if (rescore == "incremental") {
      options.incremental_rescore = true;
    } else if (rescore != "full") {
      return Status::InvalidArgument(
          "unknown --rescore (incremental|full): " + rescore);
    }
  }
  if (spec.threads) {
    const int64_t threads = args.GetInt("threads", 0);
    if (threads < 0) {
      return Status::InvalidArgument("--threads must be >= 0");
    }
    options.threads = static_cast<uint32_t>(threads);
  }
  if (spec.query) {
    const std::string query = args.GetString("query", "topk");
    bool known = false;
    for (const QueryKind kind : kAllQueryKinds) {
      if (query == QueryKindName(kind)) {
        options.query = kind;
        known = true;
        break;
      }
    }
    if (!known) {
      std::string choices;
      for (const QueryKind kind : kAllQueryKinds) {
        if (!choices.empty()) choices += "|";
        choices += QueryKindName(kind);
      }
      return Status::InvalidArgument("unknown --query (" + choices +
                                     "): " + query);
    }
    options.budget = args.GetDouble("budget", 0.0);
    options.costs_spec = args.GetString("costs", "");
    options.targets_spec = args.GetString("targets", "");
    options.seeds_spec = args.GetString("seeds", "");
  }
  return options;
}

CommonBenchConfig ReadCommonConfig(const BenchArgs& args) {
  CommonBenchConfig config;
  config.scale = args.GetDouble("scale", config.scale);
  config.mc = static_cast<uint32_t>(args.GetInt("mc", config.mc));
  config.max_k = static_cast<uint32_t>(args.GetInt("max_k", config.max_k));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", config.seed));
  return config;
}

}  // namespace holim

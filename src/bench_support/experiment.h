#ifndef HOLIM_BENCH_SUPPORT_EXPERIMENT_H_
#define HOLIM_BENCH_SUPPORT_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/solve_request.h"  // SpreadOracle
#include "util/csv_writer.h"
#include "util/status.h"

namespace holim {

/// \brief Tiny CLI flag parser shared by all bench binaries.
///
/// Supported syntax: --name=value or --name value. Unknown flags error out
/// so typos are caught.
class BenchArgs {
 public:
  Status Parse(int argc, char** argv);

  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Declares a flag (for --help and unknown-flag detection).
  void Declare(const std::string& name, const std::string& help);
  std::string HelpText(const std::string& binary) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> declared_;
};

/// \brief Fixed-width console table + CSV sink, the uniform output format
/// of every figure/table reproduction binary.
class ResultTable {
 public:
  /// `csv_path` empty disables the CSV copy.
  ResultTable(std::string title, std::vector<std::string> columns,
              const std::string& csv_path = "");

  void AddRow(const std::vector<std::string>& cells);
  /// Convenience for numeric rows.
  void AddNumericRow(const std::string& label, const std::vector<double>& values);

  /// Prints the whole table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::unique_ptr<CsvWriter> csv_;
};

/// Canonical output directory for bench CSVs ("results/", created lazily).
std::string ResultsDir();

/// Standard bench preamble: scale + mc + seeds flags every binary shares.
struct CommonBenchConfig {
  double scale = 0.2;         // dataset scale factor vs paper size
  uint32_t mc = 200;          // Monte-Carlo simulations per estimate
  uint32_t max_k = 100;       // largest seed-set size
  uint64_t seed = 42;
};
CommonBenchConfig ReadCommonConfig(const BenchArgs& args);
void DeclareCommonFlags(BenchArgs* args);

/// \brief The shared `--oracle` / `--rescore` / `--threads` flag family
/// of the bench binaries and holim_cli, declared and parsed from ONE spec
/// so a binary's help text can never drift from the default its parser
/// enforces (each binary used to pass the default separately to the
/// Declare and Parse calls).
///
/// - `--oracle`: spread backend of the MC-objective selectors and the
///   spread-evaluation helpers — "mc" (the paper's methodology, default
///   everywhere; output unchanged) or "sketch" (presampled live-edge
///   snapshots, reused across evaluations and — through the engine
///   Workspace — across solves).
/// - `--rescore`: EaSyIM/OSIM score path between greedy rounds,
///   "incremental" or "full". Seeds are bitwise identical either way. The
///   default differs by binary on purpose: figure benches default "full"
///   (the paper's O(l(m+n)) recompute is the methodology reproduced),
///   holim_cli defaults "incremental" (production path).
/// - `--sketch-eval` (declared alongside `--oracle`): sketch-oracle
///   traversal, "bitparallel" (64 live-edge worlds per machine word, the
///   default) or "scalar" (per-snapshot BFS, the differential-testing
///   reference). Results are bitwise identical either way; no-op under
///   `--oracle=mc`.
/// - `--threads`: worker threads of the sharded kernels (0 = serial);
///   results are bitwise thread-count-invariant everywhere.
/// - `--query` (plus its per-query flag group `--budget`, `--costs`,
///   `--targets`, `--seeds`; declared when `spec.query`): which QueryKind
///   the solve asks. The choice list and help text are generated from
///   kAllQueryKinds, so they cannot drift from the engine's vocabulary.
///   Old invocations are unchanged: the default is "topk", whose output is
///   byte-identical to the pre-query-vocabulary CLI. The spec strings of
///   `--costs`/`--targets`/`--seeds` are kept verbatim here (materializing
///   them needs the graph — see bench_support/query_support.h).
struct CommonOptionsSpec {
  bool oracle = false;
  /// "incremental"/"full" to declare --rescore with that default; nullptr
  /// omits the flag.
  const char* rescore_default = nullptr;
  bool threads = false;
  /// Declares the --query flag family.
  bool query = false;
};

struct CommonOptions {
  SpreadOracle oracle = SpreadOracle::kMonteCarlo;
  SketchEval sketch_eval = SketchEval::kBitParallel;
  bool incremental_rescore = false;
  uint32_t threads = 0;
  QueryKind query = QueryKind::kTopK;
  double budget = 0.0;
  /// Raw --costs / --targets / --seeds specs (graph-dependent; materialize
  /// via query_support.h).
  std::string costs_spec;
  std::string targets_spec;
  std::string seeds_spec;
};

/// Declares exactly the flags `spec` enables (with help text derived from
/// the same spec the parser reads).
void DeclareCommonOptions(BenchArgs* args, const CommonOptionsSpec& spec);
/// Parses the flags `spec` enables; flags the spec omits keep their
/// CommonOptions defaults. Unknown values are InvalidArgument.
Result<CommonOptions> ParseCommonOptions(const BenchArgs& args,
                                         const CommonOptionsSpec& spec);

}  // namespace holim

#endif  // HOLIM_BENCH_SUPPORT_EXPERIMENT_H_

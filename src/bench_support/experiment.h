#ifndef HOLIM_BENCH_SUPPORT_EXPERIMENT_H_
#define HOLIM_BENCH_SUPPORT_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/csv_writer.h"
#include "util/status.h"

namespace holim {

/// \brief Tiny CLI flag parser shared by all bench binaries.
///
/// Supported syntax: --name=value or --name value. Unknown flags error out
/// so typos are caught.
class BenchArgs {
 public:
  Status Parse(int argc, char** argv);

  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Declares a flag (for --help and unknown-flag detection).
  void Declare(const std::string& name, const std::string& help);
  std::string HelpText(const std::string& binary) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> declared_;
};

/// \brief Fixed-width console table + CSV sink, the uniform output format
/// of every figure/table reproduction binary.
class ResultTable {
 public:
  /// `csv_path` empty disables the CSV copy.
  ResultTable(std::string title, std::vector<std::string> columns,
              const std::string& csv_path = "");

  void AddRow(const std::vector<std::string>& cells);
  /// Convenience for numeric rows.
  void AddNumericRow(const std::string& label, const std::vector<double>& values);

  /// Prints the whole table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::unique_ptr<CsvWriter> csv_;
};

/// Canonical output directory for bench CSVs ("results/", created lazily).
std::string ResultsDir();

/// Standard bench preamble: scale + mc + seeds flags every binary shares.
struct CommonBenchConfig {
  double scale = 0.2;         // dataset scale factor vs paper size
  uint32_t mc = 200;          // Monte-Carlo simulations per estimate
  uint32_t max_k = 100;       // largest seed-set size
  uint64_t seed = 42;
};
CommonBenchConfig ReadCommonConfig(const BenchArgs& args);
void DeclareCommonFlags(BenchArgs* args);

/// The shared --rescore flag of the EaSyIM/OSIM binaries: chooses the
/// score path between greedy rounds. Seeds are bitwise identical either
/// way. The default differs by binary on purpose: the figure-reproduction
/// benches default to "full" (the paper's O(l(m+n)) recompute is the
/// methodology being reproduced), holim_cli defaults to "incremental"
/// (fastest path for production use).
void DeclareRescoreFlag(BenchArgs* args, const char* default_value);
/// Parses --rescore: true = "incremental", false = "full"; anything else
/// is InvalidArgument. `default_value` must match the Declare call.
Result<bool> ParseRescoreFlag(const BenchArgs& args,
                              const char* default_value);

/// The shared --oracle flag of the spread benches and holim_cli: which
/// spread-estimation backend the MC-objective selectors (GREEDY, CELF,
/// IC-N CELF) and the spread-evaluation helpers use. "mc" — the paper's
/// Monte-Carlo methodology — is the default everywhere, and with it every
/// binary's output is unchanged; "sketch" presamples live-edge snapshots
/// once (diffusion/sketch_oracle.*) and reuses them across all
/// evaluations.
enum class SpreadOracle { kMonteCarlo, kSketch };
void DeclareOracleFlag(BenchArgs* args);
/// Parses --oracle: "mc" (default) or "sketch"; anything else is
/// InvalidArgument.
Result<SpreadOracle> ParseOracleFlag(const BenchArgs& args);

}  // namespace holim

#endif  // HOLIM_BENCH_SUPPORT_EXPERIMENT_H_

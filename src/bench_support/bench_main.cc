#include "bench_support/bench_main.h"

#include <cstdio>

namespace holim {

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kOutOfRange:
      return 3;
    case StatusCode::kNotFound:
      return 4;
    case StatusCode::kIOError:
      return 5;
    case StatusCode::kAlreadyExists:
      return 6;
    case StatusCode::kUnimplemented:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kDeadlineExceeded:
      return 9;
    case StatusCode::kCancelled:
      return 10;
    case StatusCode::kResourceExhausted:
      return 11;
  }
  return 1;  // unreachable for in-enum codes; safety net for corruption
}

int BenchMain(int argc, char** argv, const std::string& description,
              const std::function<Status(const BenchArgs&)>& body,
              const std::function<void(BenchArgs*)>& declare_extra) {
  BenchArgs args;
  DeclareCommonFlags(&args);
  if (declare_extra) declare_extra(&args);
  Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpText(argv[0]).c_str());
    return ExitCodeForStatus(st);
  }
  if (args.GetBool("help", false)) {
    std::printf("%s\n%s", description.c_str(),
                args.HelpText(argv[0]).c_str());
    return 0;
  }
  std::printf("%s\n", description.c_str());
  st = body(args);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return ExitCodeForStatus(st);
  }
  return 0;
}

}  // namespace holim

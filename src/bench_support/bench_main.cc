#include "bench_support/bench_main.h"

#include <cstdio>

namespace holim {

int BenchMain(int argc, char** argv, const std::string& description,
              const std::function<Status(const BenchArgs&)>& body,
              const std::function<void(BenchArgs*)>& declare_extra) {
  BenchArgs args;
  DeclareCommonFlags(&args);
  if (declare_extra) declare_extra(&args);
  Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpText(argv[0]).c_str());
    return 1;
  }
  if (args.GetBool("help", false)) {
    std::printf("%s\n%s", description.c_str(),
                args.HelpText(argv[0]).c_str());
    return 0;
  }
  std::printf("%s\n", description.c_str());
  st = body(args);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace holim

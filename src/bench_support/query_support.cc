#include "bench_support/query_support.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "data/twitter.h"
#include "util/string_util.h"

namespace holim {

namespace {

constexpr const char* kTwitterTopicPrefix = "twitter-topic";

Result<std::vector<double>> ReadDoublesFile(const std::string& path,
                                            uint32_t expected) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open cost file: " + path);
  std::vector<double> values;
  values.reserve(expected);
  double v = 0.0;
  while (in >> v) values.push_back(v);
  if (values.size() != expected) {
    return Status::InvalidArgument(
        path + ": expected one cost per node (" + std::to_string(expected) +
        "), got " + std::to_string(values.size()));
  }
  return values;
}

}  // namespace

Result<QueryKind> ParseQueryKind(const std::string& name) {
  for (const QueryKind kind : kAllQueryKinds) {
    if (name == QueryKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown --query (" + QueryKindChoices() +
                                 "): " + name);
}

std::string QueryKindChoices() {
  std::string choices;
  for (const QueryKind kind : kAllQueryKinds) {
    if (!choices.empty()) choices += "|";
    choices += QueryKindName(kind);
  }
  return choices;
}

Result<std::vector<double>> MaterializeCosts(const std::string& spec,
                                             const Graph& graph) {
  if (spec.empty() || spec == "uniform") return std::vector<double>{};
  if (spec == "degree") {
    std::vector<double> costs(graph.num_nodes());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      costs[u] = 1.0 + static_cast<double>(graph.OutDegree(u));
    }
    return costs;
  }
  HOLIM_ASSIGN_OR_RETURN(std::vector<double> costs,
                         ReadDoublesFile(spec, graph.num_nodes()));
  for (const double c : costs) {
    if (!std::isfinite(c) || !(c > 0.0)) {
      return Status::InvalidArgument(spec +
                                     ": costs must be finite and > 0");
    }
  }
  return costs;
}

Result<std::vector<double>> MaterializeTargets(const std::string& spec,
                                               const Graph& graph,
                                               uint64_t seed) {
  if (spec.empty()) return std::vector<double>{};
  if (StartsWith(spec, kTwitterTopicPrefix)) {
    uint32_t topic_index = 0;
    const std::string rest = spec.substr(std::string(kTwitterTopicPrefix).size());
    if (!rest.empty()) {
      if (rest[0] != ':') {
        return Status::InvalidArgument("bad --targets spec (want " +
                                       std::string(kTwitterTopicPrefix) +
                                       "[:i]): " + spec);
      }
      try {
        topic_index = static_cast<uint32_t>(std::stoul(rest.substr(1)));
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad topic index in --targets: " +
                                       spec);
      }
    }
    TwitterCorpusOptions options;
    options.num_users = graph.num_nodes();
    options.num_topics = std::max(topic_index + 1, 5u);
    options.seed = seed;
    HOLIM_ASSIGN_OR_RETURN(TwitterCorpus corpus, BuildTwitterCorpus(options));
    const TopicData& topic = corpus.topics.at(topic_index);
    std::vector<double> weights(graph.num_nodes(), 0.0);
    for (const NodeId original : topic.subgraph.to_original) {
      weights[original] = 1.0;
    }
    return weights;
  }
  // A file of target node ids: weight 1.0 on listed nodes, 0 elsewhere.
  std::ifstream in(spec);
  if (!in) return Status::IOError("cannot open target file: " + spec);
  std::vector<double> weights(graph.num_nodes(), 0.0);
  long long id = 0;
  while (in >> id) {
    if (id < 0 || static_cast<uint64_t>(id) >= graph.num_nodes()) {
      return Status::InvalidArgument(spec + ": target node id " +
                                     std::to_string(id) + " out of range");
    }
    weights[static_cast<NodeId>(id)] = 1.0;
  }
  return weights;
}

Result<std::vector<NodeId>> ParseSeedList(const std::string& spec,
                                          const Graph& graph) {
  std::vector<NodeId> seeds;
  for (const std::string_view token : SplitTokens(spec, ", \t")) {
    try {
      const unsigned long id = std::stoul(std::string(token));
      if (id >= graph.num_nodes()) {
        return Status::InvalidArgument("--seeds node id " +
                                       std::string(token) + " out of range");
      }
      seeds.push_back(static_cast<NodeId>(id));
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad --seeds node id: " +
                                     std::string(token));
    }
  }
  if (seeds.empty()) {
    return Status::InvalidArgument("--seeds must list at least one node id");
  }
  return seeds;
}

}  // namespace holim

#ifndef HOLIM_BENCH_SUPPORT_BENCH_MAIN_H_
#define HOLIM_BENCH_SUPPORT_BENCH_MAIN_H_

#include <functional>
#include <string>

#include "bench_support/experiment.h"

namespace holim {

/// Uniform entry point for figure/table binaries: parses flags (declaring
/// the common set), prints --help, runs `body`, and converts a non-OK
/// Status into exit code 1.
int BenchMain(int argc, char** argv, const std::string& description,
              const std::function<Status(const BenchArgs&)>& body,
              const std::function<void(BenchArgs*)>& declare_extra = nullptr);

}  // namespace holim

#endif  // HOLIM_BENCH_SUPPORT_BENCH_MAIN_H_

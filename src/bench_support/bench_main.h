#ifndef HOLIM_BENCH_SUPPORT_BENCH_MAIN_H_
#define HOLIM_BENCH_SUPPORT_BENCH_MAIN_H_

#include <functional>
#include <string>

#include "bench_support/experiment.h"

namespace holim {

/// StatusCode -> process exit code, one distinct nonzero code per error
/// kind so scripts can branch on the failure class without parsing stderr:
///   0 OK                    5 kIOError            9 kDeadlineExceeded
///   2 kInvalidArgument      6 kAlreadyExists     10 kCancelled
///   3 kOutOfRange           7 kUnimplemented     11 kResourceExhausted
///   4 kNotFound             8 kInternal
/// (1 is reserved as the legacy catch-all and never produced by a typed
/// Status.)
int ExitCodeForStatus(const Status& status);

/// Uniform entry point for figure/table binaries: parses flags (declaring
/// the common set), prints --help, runs `body`, and converts a non-OK
/// Status into the message on stderr plus ExitCodeForStatus's exit code.
int BenchMain(int argc, char** argv, const std::string& description,
              const std::function<Status(const BenchArgs&)>& body,
              const std::function<void(BenchArgs*)>& declare_extra = nullptr);

}  // namespace holim

#endif  // HOLIM_BENCH_SUPPORT_BENCH_MAIN_H_

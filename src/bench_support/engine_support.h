#ifndef HOLIM_BENCH_SUPPORT_ENGINE_SUPPORT_H_
#define HOLIM_BENCH_SUPPORT_ENGINE_SUPPORT_H_

// Glue between the bench harness and HolimEngine: every figure/table
// binary (and holim_cli) dispatches its algorithm runs through an engine
// with a SolveRequest prefilled here, instead of hand-constructing
// selectors — one dispatch path, and the Workspace amortizes sketch
// arenas / scorer state across a binary's queries.

#include <memory>
#include <string>

#include "bench_support/experiment.h"
#include "diffusion/sketch_oracle.h"
#include "engine/holim_engine.h"
#include "model/influence_params.h"

namespace holim {

/// SolveRequest prefilled from the shared bench config and common flag
/// family. Benches run their own evaluation sweeps, so evaluate_spread is
/// off; flip it (or any other knob) on the returned request as needed.
/// The bench binaries' shared sketch-oracle acquisition: R = config.mc
/// worlds (so the sketch and MC estimators see comparable sample sizes),
/// sampled serially per the figure methodology, cached in the engine's
/// Workspace. `seed_offset` picks an independently seeded world set
/// (fig6de's train/eval split); `record_edge_offsets` only for the
/// opinion-replay benches.
inline std::shared_ptr<const SketchOracle> GetBenchSketchOracle(
    HolimEngine& engine, const Graph& graph, const InfluenceParams& params,
    const CommonBenchConfig& config, uint64_t seed_offset = 0,
    bool record_edge_offsets = false) {
  SketchOptions options;
  options.num_snapshots = config.mc;
  options.seed = config.seed + seed_offset;
  options.record_edge_offsets = record_edge_offsets;
  return engine.workspace().GetSketchOracle(graph, params, options,
                                            engine.graph_token());
}

inline SolveRequest MakeSolveRequest(std::string algorithm, uint32_t k,
                                     const InfluenceParams& params,
                                     const CommonBenchConfig& config,
                                     const CommonOptions& common = {}) {
  SolveRequest request;
  request.algorithm = std::move(algorithm);
  request.k = k;
  request.params = &params;
  request.mc = config.mc;
  request.seed = config.seed;
  request.oracle = common.oracle;
  request.sketch_eval = common.sketch_eval;
  request.incremental_rescore = common.incremental_rescore;
  request.threads = common.threads;
  // The query kind and budget carry over directly; the graph-dependent
  // vectors (node_costs / target_weights / given_seeds) are materialized
  // by the caller from the raw specs (bench_support/query_support.h).
  request.query = common.query;
  request.budget = common.budget;
  request.evaluate_spread = false;
  return request;
}

}  // namespace holim

#endif  // HOLIM_BENCH_SUPPORT_ENGINE_SUPPORT_H_

#ifndef HOLIM_BENCH_SUPPORT_QUERY_SUPPORT_H_
#define HOLIM_BENCH_SUPPORT_QUERY_SUPPORT_H_

// Materializers behind holim_cli's --query flag family: turn the spec
// strings (--costs=, --targets=, --seeds=) into the per-node vectors a
// SolveRequest carries. Kept out of the CLI so the query-family bench and
// tests drive the exact same parsing/materialization code path.

#include <string>
#include <vector>

#include "engine/solve_request.h"
#include "graph/graph.h"
#include "util/status.h"

namespace holim {

/// Parses a `--query=` value against the canonical QueryKindName spelling
/// of every kind (the one list in kAllQueryKinds). InvalidArgument names
/// the accepted spellings.
Result<QueryKind> ParseQueryKind(const std::string& name);

/// The accepted `--query=` spellings, "topk|budgeted|..." — derived from
/// kAllQueryKinds so CLI help text cannot drift from the enum.
std::string QueryKindChoices();

/// Materializes a `--costs=` spec into SolveRequest::node_costs:
///   "" / "uniform"  -> empty vector (the engine's uniform-1.0 contract)
///   "degree"        -> cost(u) = 1 + out_degree(u) (hubs cost more)
///   <path>          -> whitespace-separated doubles, one per node, all > 0
Result<std::vector<double>> MaterializeCosts(const std::string& spec,
                                             const Graph& graph);

/// Materializes a `--targets=` spec into SolveRequest::target_weights:
///   ""                    -> empty vector (untargeted)
///   "twitter-topic[:i]"   -> 0/1 weights marking the members of topic i of
///                            a Twitter corpus (src/data/twitter.*) built
///                            deterministically over this graph's node
///                            universe (num_users = n, seeded by `seed`) —
///                            the "users who engaged with hashtag i" target
///                            set of the paper's Twitter experiment.
///   <path>                -> whitespace-separated target node ids; weight
///                            1.0 on listed nodes, 0 elsewhere.
Result<std::vector<double>> MaterializeTargets(const std::string& spec,
                                               const Graph& graph,
                                               uint64_t seed);

/// Parses a `--seeds=` comma-separated node-id list into
/// SolveRequest::given_seeds (ids validated against the graph).
Result<std::vector<NodeId>> ParseSeedList(const std::string& spec,
                                          const Graph& graph);

}  // namespace holim

#endif  // HOLIM_BENCH_SUPPORT_QUERY_SUPPORT_H_

#ifndef HOLIM_ALGO_SIMPATH_H_
#define HOLIM_ALGO_SIMPATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Tuning parameters of SIMPATH (Goyal, Lu, Lakshmanan, ICDM'11).
struct SimpathOptions {
  /// Path-weight pruning threshold (paper Sec. 4 uses eta = 1e-3).
  double eta = 1e-3;
  /// CELF look-ahead: top-l candidates re-evaluated per round (paper: 4).
  uint32_t lookahead = 4;
  /// Hard cap on simple-path enumeration depth (safety valve; the weight
  /// prune usually terminates far earlier since weights shrink as 1/indeg^d).
  uint32_t max_depth = 16;
};

/// \brief SIMPATH — simple-path spread estimation for the LT model.
///
/// Under LT the spread of a seed set decomposes into sums over simple
/// paths: sigma({u}) = sum over simple paths starting at u of the product
/// of edge weights. SIMPATH enumerates those paths by backtracking DFS,
/// pruning any prefix whose weight drops below eta, and drives a CELF-style
/// lazy-greedy with a `lookahead` optimization: only the top-l heap
/// candidates get fresh marginal-gain evaluations per round.
///
/// Marginal gains use the paper's decomposition
///   sigma(S + u) = sigma^{V-u}(S) + sigma^{V-S}({u}),
/// both terms evaluated by pruned path enumeration. (The vertex-cover
/// first-round optimization of the original paper is a constant-factor
/// speedup and is not implemented; DESIGN.md records this.)
class SimpathSelector : public SeedSelector {
 public:
  SimpathSelector(const Graph& graph, const InfluenceParams& params,
                  const SimpathOptions& options = {});

  std::string name() const override;
  Result<SeedSelection> Select(uint32_t k) override;

  /// Pruned simple-path spread of `u` in the graph with `excluded` nodes
  /// removed. Exposed for tests (exact on small graphs as eta -> 0).
  double SpreadOfNode(NodeId u, const std::vector<char>& excluded) const;

  /// sigma^{V-excluded}(S): sum of per-seed spreads on V - excluded - (S\{u}).
  double SpreadOfSet(const std::vector<NodeId>& seeds,
                     const std::vector<char>& excluded) const;

 private:
  double EnumerateFrom(NodeId u, std::vector<char>& on_path,
                       const std::vector<char>& excluded, double weight,
                       uint32_t depth) const;

  const Graph& graph_;
  const InfluenceParams& params_;
  SimpathOptions options_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_SIMPATH_H_

#include "algo/seed_selector.h"

// Interface-only translation unit.

#ifndef HOLIM_ALGO_IMM_H_
#define HOLIM_ALGO_IMM_H_

#include <cstdint>
#include <string>

#include "algo/rr_sets.h"
#include "algo/seed_selector.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Tuning parameters of IMM (Tang et al., SIGMOD'15).
struct ImmOptions {
  double epsilon = 0.1;
  double ell = 1.0;
  uint64_t seed = 123;
  /// 0 = uncapped; safety valve as in TIM+. Select() consumes one RNG draw
  /// per doubling round and one for the final theta regardless of whether
  /// the round actually appends sets, so the seed a given round generates
  /// with does not depend on where max_theta capped an earlier round.
  std::size_t max_theta = 0;
  /// Pool for sharded RR-set generation (nullptr -> DefaultThreadPool()).
  /// Selected seeds are identical for every pool size (see rr_sets.h).
  ThreadPool* pool = nullptr;
};

/// \brief IMM — martingale-based RIS influence maximization.
///
/// The sampling phase geometrically grows the RR collection; after each
/// growth step it runs greedy max-coverage and tests whether the covered
/// mass certifies a lower bound LB on OPT. Once certified, theta =
/// lambda* / LB sets suffice (reusing the already-drawn sets), and the
/// final greedy pass yields a (1 - 1/e - eps)-approximation w.h.p. IMM's
/// improvement over TIM+ is precisely that the estimation samples are
/// reused, cutting the RR-set count by a large constant.
class ImmSelector : public SeedSelector {
 public:
  ImmSelector(const Graph& graph, const InfluenceParams& params,
              const ImmOptions& options = {});

  std::string name() const override;
  Result<SeedSelection> Select(uint32_t k) override;

  struct RunStats {
    double lower_bound = 0.0;
    std::size_t theta = 0;
    /// RR arena only (paper Fig. 6i metric; comparable across releases).
    std::size_t rr_memory_bytes = 0;
    /// Persistent incremental inverted index on top of the arena.
    std::size_t rr_index_bytes = 0;
  };
  const RunStats& last_run_stats() const { return stats_; }

  /// RunStats flattened for SolveResult::stats.
  std::vector<std::pair<std::string, double>> LastRunStats() const override {
    return {{"lower_bound", stats_.lower_bound},
            {"theta", static_cast<double>(stats_.theta)},
            {"rr_memory_bytes", static_cast<double>(stats_.rr_memory_bytes)},
            {"rr_index_bytes", static_cast<double>(stats_.rr_index_bytes)}};
  }

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  ImmOptions options_;
  RunStats stats_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_IMM_H_

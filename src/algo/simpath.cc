#include "algo/simpath.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <queue>

#include "util/memory.h"
#include "util/timer.h"

namespace holim {

SimpathSelector::SimpathSelector(const Graph& graph,
                                 const InfluenceParams& params,
                                 const SimpathOptions& options)
    : graph_(graph), params_(params), options_(options) {}

std::string SimpathSelector::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "SIMPATH(eta=%.2g)", options_.eta);
  return buf;
}

double SimpathSelector::EnumerateFrom(NodeId u, std::vector<char>& on_path,
                                      const std::vector<char>& excluded,
                                      double weight, uint32_t depth) const {
  // Returns the summed weight of simple paths strictly extending the current
  // prefix ending at u. Each extension contributes its own weight (the
  // probability the path is fully live), which is that node's activation
  // contribution under the LT live-edge view.
  if (depth >= options_.max_depth) return 0.0;
  double total = 0.0;
  const EdgeId base = graph_.OutEdgeBegin(u);
  auto neighbors = graph_.OutNeighbors(u);
  on_path[u] = 1;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    const NodeId v = neighbors[i];
    if (on_path[v] || excluded[v]) continue;
    const double w = weight * params_.p(base + i);
    if (w < options_.eta) continue;  // prune light prefixes
    total += w + EnumerateFrom(v, on_path, excluded, w, depth + 1);
  }
  on_path[u] = 0;
  return total;
}

double SimpathSelector::SpreadOfNode(NodeId u,
                                     const std::vector<char>& excluded) const {
  std::vector<char> on_path(graph_.num_nodes(), 0);
  return EnumerateFrom(u, on_path, excluded, 1.0, 0);
}

double SimpathSelector::SpreadOfSet(const std::vector<NodeId>& seeds,
                                    const std::vector<char>& excluded) const {
  // sigma(S) = sum_{u in S} sigma^{V - (S \ u)}({u}) + |S| accounts for the
  // LT decomposition; we report spread *excluding* seeds per Def. 3, so the
  // |S| term is dropped.
  std::vector<char> mask = excluded;
  for (NodeId s : seeds) mask[s] = 1;
  double total = 0.0;
  std::vector<char> on_path(graph_.num_nodes(), 0);
  for (NodeId s : seeds) {
    mask[s] = 0;  // u itself may start paths
    total += EnumerateFrom(s, on_path, mask, 1.0, 0);
    mask[s] = 1;
  }
  return total;
}

Result<SeedSelection> SimpathSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  const NodeId n = graph_.num_nodes();
  std::vector<char> no_exclusions(n, 0);

  struct Entry {
    NodeId node;
    double gain;
    uint32_t round;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;
  for (NodeId u = 0; u < n; ++u) {
    heap.push({u, SpreadOfNode(u, no_exclusions), 0});
  }

  std::vector<char> seed_mask(n, 0);
  double current_value = 0.0;
  while (selection.seeds.size() < k && !heap.empty()) {
    const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
    // Look-ahead: refresh up to `lookahead` stale top candidates, then pick.
    std::vector<Entry> refreshed;
    bool picked = false;
    for (uint32_t scan = 0; scan < options_.lookahead && !heap.empty();
         ++scan) {
      Entry top = heap.top();
      heap.pop();
      if (top.round == round) {
        selection.seeds.push_back(top.node);
        selection.seed_scores.push_back(top.gain);
        seed_mask[top.node] = 1;
        current_value += top.gain;
        picked = true;
        break;
      }
      // sigma(S + u) = sigma^{V-u}(S) + sigma^{V-S}(u).
      std::vector<char> without_u = seed_mask;
      without_u[top.node] = 1;
      const double sigma_s_minus_u = SpreadOfSet(selection.seeds, without_u);
      const double sigma_u = SpreadOfNode(top.node, seed_mask);
      top.gain = sigma_s_minus_u + sigma_u - current_value;
      top.round = round;
      refreshed.push_back(top);
    }
    for (const Entry& e : refreshed) heap.push(e);
    if (!picked && heap.empty()) break;
  }

  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

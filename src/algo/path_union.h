#ifndef HOLIM_ALGO_PATH_UNION_H_
#define HOLIM_ALGO_PATH_UNION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/status.h"

namespace holim {

/// \brief Path-Union (PU) score assignment (paper Algorithm 3).
///
/// Dense-matrix analogue of EaSyIM: PU starts as the identity, and each of
/// the l iterations multiplies by the probability-annotated adjacency matrix
/// under the paper's custom "⊗" operator, where contributions from distinct
/// intermediate nodes combine by probabilistic union (inclusion–exclusion
/// for independent events, a ∪ b = a + b − ab) instead of plain addition.
/// Diagonal entries are zeroed every round to discount walks that return to
/// their origin.
///
/// O(n² ) memory and O(l·n³) time — usable only on small graphs; it exists
/// as the analytical reference EaSyIM is compared against (Lemmas 5–7) and
/// as an ablation baseline.
class PathUnionScorer {
 public:
  PathUnionScorer(const Graph& graph, const InfluenceParams& params,
                  uint32_t l);

  /// Computes Delta_l for every node. Fails if n is too large for the dense
  /// representation (guard: n > 4096).
  Result<std::vector<double>> AssignScores() const;

  /// The full pairwise walk-union matrix after l rounds (tests inspect it).
  Result<std::vector<std::vector<double>>> WalkUnionMatrix() const;

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  uint32_t l_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_PATH_UNION_H_

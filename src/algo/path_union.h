#ifndef HOLIM_ALGO_PATH_UNION_H_
#define HOLIM_ALGO_PATH_UNION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/status.h"

namespace holim {

/// \brief Path-Union (PU) score assignment (paper Algorithm 3).
///
/// Dense-matrix analogue of EaSyIM: PU starts as the identity, and each of
/// the l iterations multiplies by the probability-annotated adjacency matrix
/// under the paper's custom "⊗" operator, where contributions from distinct
/// intermediate nodes combine by probabilistic union (inclusion–exclusion
/// for independent events, a ∪ b = a + b − ab) instead of plain addition.
/// Diagonal entries are zeroed every round to discount walks that return to
/// their origin.
///
/// O(n² ) memory and O(l·n³) time — usable only on small graphs; it exists
/// as the analytical reference EaSyIM is compared against (Lemmas 5–7) and
/// as an ablation baseline.
class PathUnionScorer {
 public:
  PathUnionScorer(const Graph& graph, const InfluenceParams& params,
                  uint32_t l);

  /// Computes Delta_l for every node. Fails if n is too large for the dense
  /// representation (guard: n > 4096).
  Result<std::vector<double>> AssignScores() const;

  /// The full pairwise walk-union matrix after l rounds (tests inspect it).
  Result<std::vector<std::vector<double>>> WalkUnionMatrix() const;

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  uint32_t l_;
};

/// \brief PU as a one-shot selector: score every node by Delta_l once and
/// take the top-k (score descending, smaller id on ties).
///
/// No residual-graph re-scoring — PU is the analytical reference, not a
/// greedy driver — so Select is a single AssignScores pass. Inherits the
/// scorer's dense-representation guard (n > 4096 errors out).
class PathUnionSelector : public SeedSelector {
 public:
  PathUnionSelector(const Graph& graph, const InfluenceParams& params,
                    uint32_t l)
      : graph_(graph), scorer_(graph, params, l), l_(l) {}

  std::string name() const override {
    return "PathUnion(l=" + std::to_string(l_) + ")";
  }
  Result<SeedSelection> Select(uint32_t k) override;

 private:
  const Graph& graph_;
  PathUnionScorer scorer_;
  uint32_t l_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_PATH_UNION_H_

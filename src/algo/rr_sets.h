#ifndef HOLIM_ALGO_RR_SETS_H_
#define HOLIM_ALGO_RR_SETS_H_

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/rng.h"

namespace holim {

/// \brief Reverse-reachable set sampler + max-coverage seed selection — the
/// shared substrate of TIM+ and IMM (Borgs et al., Tang et al.).
///
/// An RR set for a uniformly random root v contains every node that would
/// have activated v in a reverse simulation: under IC each in-edge (u, v)
/// is traversed independently w.p. p(u,v); under LT each visited node picks
/// at most one live in-edge (live-edge equivalence). E[coverage] * n / theta
/// is an unbiased spread estimator.
class RrCollection {
 public:
  RrCollection(const Graph& graph, const InfluenceParams& params);

  /// Appends `count` RR sets sampled with `rng`.
  void Generate(std::size_t count, Rng& rng);

  /// Drops all sets (keeps capacity).
  void Clear();

  std::size_t num_sets() const { return sets_.size(); }
  const std::vector<NodeId>& set(std::size_t i) const { return sets_[i]; }
  /// Total node entries across all sets (TIM's EPT uses width = in-degree
  /// sum; this is the node-count size used for memory accounting).
  std::size_t total_entries() const { return total_entries_; }
  /// Sum over sets of the in-degree "width" w(R) (TIM Sec. 4 KPT estimate).
  uint64_t total_width() const { return total_width_; }

  /// Greedy max-coverage over the collected sets. Returns k seeds and the
  /// fraction of sets covered.
  struct CoverageResult {
    std::vector<NodeId> seeds;
    double covered_fraction = 0.0;
  };
  CoverageResult SelectMaxCoverage(uint32_t k) const;

  /// Fraction of sets that contain at least one of `seeds`.
  double CoveredFraction(const std::vector<NodeId>& seeds) const;

  /// Bytes held by the RR sets (the memory-hungry part of TIM+; Fig. 6i).
  std::size_t MemoryBytes() const;

 private:
  void SampleOne(Rng& rng);

  const Graph& graph_;
  const InfluenceParams& params_;
  std::vector<std::vector<NodeId>> sets_;
  std::size_t total_entries_ = 0;
  uint64_t total_width_ = 0;
  EpochSet visited_;
  std::vector<NodeId> stack_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_RR_SETS_H_

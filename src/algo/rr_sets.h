#ifndef HOLIM_ALGO_RR_SETS_H_
#define HOLIM_ALGO_RR_SETS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holim {

/// \brief Reverse-reachable set sampler + max-coverage seed selection — the
/// shared substrate of TIM+ and IMM (Borgs et al., Tang et al.).
///
/// An RR set for a uniformly random root v contains every node that would
/// have activated v in a reverse simulation: under IC each in-edge (u, v)
/// is traversed independently w.p. p(u,v); under LT each visited node picks
/// at most one live in-edge (live-edge equivalence). E[coverage] * n / theta
/// is an unbiased spread estimator.
///
/// ## Arena layout
///
/// Sets are stored CSR-style in one flat arena instead of one heap
/// allocation per set:
///
///   entries_  : NodeId[total_entries]   — node members, sets back to back
///   offsets_  : size_t[num_sets + 1]    — set i is entries_[offsets_[i]
///                                          .. offsets_[i+1])
///   widths_   : uint64[num_sets]        — per-set width w(R) = sum of
///                                          in-degrees (TIM's KPT
///                                          statistic); only stored when
///                                          track_widths is requested
///
/// The first entry of every set is its root. Fixed per-set overhead is
/// 8 bytes (one offset; 16 with per-set widths) versus 24 bytes of
/// std::vector header plus a separate heap block in the legacy layout, and
/// `SelectMaxCoverage` / `CoveredFraction` scan sets with zero pointer
/// chasing. `set(i)` hands out zero-copy spans into the arena.
///
/// ## RNG-sharding contract (GenerateParallel)
///
/// `GenerateParallel(count, seed, pool)` appends `count` sets sampled in
/// fixed-size blocks of `kGenerateBlockSize`. Block b (0-based within the
/// call) is sampled sequentially by an independent RNG stream seeded with
/// SplitMix64(seed + kGenerateSeedSalt * (b + 1)) — the same derivation
/// shape as `RunSharded` in diffusion/spread_estimator.cc, with a
/// different salt constant (the two streams are unrelated and must stay
/// so; do not "unify" the constants). Because block
/// decomposition and block seeds depend only on (count, seed) — never on
/// the pool size — the resulting arena is bitwise identical for any thread
/// count, including the inline single-thread pool. Blocks are processed in
/// waves of one block per shard, with per-shard scratch (EpochSet + DFS
/// stack) and reusable output buffers merged into the arena in block order
/// after each wave — peak transient memory is one wave of buffers, not a
/// second copy of the arena.
class RrCollection {
 public:
  /// Sets sampled per RNG block in GenerateParallel. Part of the
  /// reproducibility contract: changing it changes sampled sets.
  static constexpr std::size_t kGenerateBlockSize = 256;
  /// Salt for deriving block seeds (same shape as RunSharded's derivation,
  /// deliberately a different constant).
  static constexpr uint64_t kGenerateSeedSalt = 0x9E3779B97F4A7C15ULL;

  /// `track_widths` additionally records the per-set width w(R) (8 bytes
  /// per set), needed only by TIM+'s KPT estimation; total_width() is
  /// always maintained.
  RrCollection(const Graph& graph, const InfluenceParams& params,
               bool track_widths = false);

  /// Appends `count` RR sets sampled sequentially with `rng` (legacy serial
  /// path; draws are interleaved with the caller's stream).
  void Generate(std::size_t count, Rng& rng);

  /// Appends `count` RR sets sharded across `pool` (nullptr selects
  /// DefaultThreadPool()) under the RNG-sharding contract above. Output is
  /// independent of the pool's thread count.
  void GenerateParallel(std::size_t count, uint64_t seed,
                        ThreadPool* pool = nullptr);

  /// Drops all sets (keeps capacity).
  void Clear();

  std::size_t num_sets() const { return offsets_.size() - 1; }
  /// Zero-copy view of set i; the root is element 0. Invalidated by
  /// Generate/GenerateParallel/Clear.
  std::span<const NodeId> set(std::size_t i) const {
    return {entries_.data() + offsets_[i], entries_.data() + offsets_[i + 1]};
  }
  /// Width w(R_i): in-degree sum over members (TIM Sec. 4 KPT estimate).
  /// Only valid when constructed with track_widths.
  uint64_t set_width(std::size_t i) const { return widths_[i]; }
  /// Total node entries across all sets (TIM's EPT uses width = in-degree
  /// sum; this is the node-count size used for memory accounting).
  std::size_t total_entries() const { return entries_.size(); }
  /// Sum over sets of the in-degree "width" w(R) (TIM Sec. 4 KPT estimate).
  uint64_t total_width() const { return total_width_; }

  /// Greedy max-coverage over the collected sets. Returns k seeds and the
  /// fraction of sets covered.
  struct CoverageResult {
    std::vector<NodeId> seeds;
    double covered_fraction = 0.0;
  };
  /// Lazy-greedy (CELF) max-coverage over a flat inverted index: each pick
  /// pops the stale-max heap and re-counts that node's uncovered sets
  /// instead of eagerly decrementing every co-member's gain. Ties break
  /// toward the smaller node id.
  CoverageResult SelectMaxCoverage(uint32_t k) const;

  /// Fraction of sets that contain at least one of `seeds`.
  double CoveredFraction(const std::vector<NodeId>& seeds) const;

  /// Bytes held by the RR arena (the memory-hungry part of TIM+; Fig. 6i).
  std::size_t MemoryBytes() const;

 private:
  /// Samples one RR set with `rng`, appending its members to `out`
  /// (root first). Returns the set's width.
  uint64_t SampleOne(Rng& rng, EpochSet& visited, std::vector<NodeId>& stack,
                     std::vector<NodeId>& out) const;

  const Graph& graph_;
  const InfluenceParams& params_;
  bool track_widths_ = false;
  std::vector<NodeId> entries_;       // flat member arena
  std::vector<std::size_t> offsets_;  // num_sets + 1, offsets_[0] == 0
  std::vector<uint64_t> widths_;      // per-set width; empty unless tracked
  uint64_t total_width_ = 0;
  // Scratch for the serial path (GenerateParallel uses per-shard scratch).
  EpochSet visited_;
  std::vector<NodeId> stack_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_RR_SETS_H_

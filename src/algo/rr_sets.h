#ifndef HOLIM_ALGO_RR_SETS_H_
#define HOLIM_ALGO_RR_SETS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace holim {

/// \brief Reverse-reachable set sampler + max-coverage seed selection — the
/// shared substrate of TIM+ and IMM (Borgs et al., Tang et al.).
///
/// An RR set for a uniformly random root v contains every node that would
/// have activated v in a reverse simulation: under IC each in-edge (u, v)
/// is traversed independently w.p. p(u,v); under LT each visited node picks
/// at most one live in-edge (live-edge equivalence). E[coverage] * n / theta
/// is an unbiased spread estimator.
///
/// ## Arena layout
///
/// Sets are stored CSR-style in one flat arena instead of one heap
/// allocation per set:
///
///   entries_  : NodeId[total_entries]   — node members, sets back to back
///   offsets_  : size_t[num_sets + 1]    — set i is entries_[offsets_[i]
///                                          .. offsets_[i+1])
///   widths_   : uint64[num_sets]        — per-set width w(R) = sum of
///                                          in-degrees (TIM's KPT
///                                          statistic); only stored when
///                                          track_widths is requested
///
/// The first entry of every set is its root. Fixed per-set overhead is
/// 8 bytes (one offset; 16 with per-set widths) versus 24 bytes of
/// std::vector header plus a separate heap block in the legacy layout, and
/// coverage queries scan sets with zero pointer chasing. `set(i)` hands out
/// zero-copy spans into the arena.
///
/// ## Incremental inverted index (node -> containing set ids)
///
/// The index CELF greedy runs against is owned, persistent state, not a
/// per-call temporary: every `Generate` / `GenerateParallel` call indexes
/// exactly the sets it appended, so a caller that alternates appends and
/// selections (IMM's doubling rounds) pays O(new entries) per round instead
/// of O(total entries).
///
/// The index is a short list of CSR *segments*, one per generate call; each
/// segment groups the set ids of a contiguous, ascending range of sets by
/// node. Per-node lists are therefore sorted ascending across and within
/// segments. `cover_count_[u]` (number of indexed sets containing u) is
/// maintained alongside and seeds the CELF heap. If the segment list ever
/// exceeds `kMaxIndexSegments` (many tiny appends, or doubling rounds on
/// graphs past ~2^24 nodes), the adjacent pair with the fewest sets is
/// merged until the cap holds again — a binomial-style compaction that
/// keeps total index work amortized near-linear while typical
/// doubling-round usage triggers few or no merges.
///
/// In `GenerateParallel` the per-node counts that shape a new segment are
/// accumulated as shard-local partial indexes on the pool (each shard
/// counts the members of the blocks it sampled, wave by wave) and reduced
/// once at the end of the call; the placement pass then scatters set ids in
/// arena order, so index content — like the arena — is bitwise identical
/// for any thread count.
///
/// ## Snapshot lifecycle & invalidation
///
/// `Snapshot()` returns a `CoverageSnapshot`, a zero-copy view that runs
/// CELF against the live index restricted to the sets present at snapshot
/// time:
///
///  - Appending more sets does NOT invalidate a snapshot: set ids are
///    append-only and per-node lists are sorted, so the view simply stops
///    at its pinned `num_sets()` bound.
///  - `Clear()` bumps the collection's epoch counter and resets the index;
///    using a snapshot taken before the `Clear` aborts via HOLIM_CHECK
///    (its set ids would dangle). `valid()` reports whether the snapshot's
///    epoch still matches.
///
/// `SelectMaxCoverage(k)` is shorthand for `Snapshot().SelectMaxCoverage(k)`;
/// `SelectMaxCoverageRebuild(k)` is the legacy from-scratch path (rebuilds a
/// transient index on every call) kept as the reference baseline for tests
/// and the `incremental_select` microbenchmark section.
///
/// ## RNG-sharding contract (GenerateParallel)
///
/// `GenerateParallel(count, seed, pool)` appends `count` sets sampled in
/// fixed-size blocks of `kGenerateBlockSize`. Block b (0-based within the
/// call) is sampled sequentially by an independent RNG stream seeded with
/// SplitMix64(seed + kGenerateSeedSalt * (b + 1)) — the same derivation
/// shape as the MC estimator's per-simulation streams
/// (diffusion/spread_estimator.cc) and the sketch oracle's per-block
/// streams (diffusion/sketch_oracle.*), each with its own salt constant
/// (the streams are unrelated and must stay so; do not "unify" the
/// constants). Because block
/// decomposition and block seeds depend only on (count, seed) — never on
/// the pool size — the resulting arena is bitwise identical for any thread
/// count, including the inline single-thread pool. Blocks are processed in
/// waves of one block per shard, with per-shard scratch (EpochSet + DFS
/// stack) and reusable output buffers merged into the arena in block order
/// after each wave — peak transient memory is one wave of buffers, not a
/// second copy of the arena.
///
/// ## Streaming deltas (ApplyDelta)
///
/// The same contract makes the collection patchable after a graph delta:
/// each GenerateParallel call records (first_set, count, seed), and a
/// block's draw sequence depends only on its seed and on the in-rows of
/// the nodes its DFS pops — which are exactly the sets' members. After a
/// delta, a block replays bitwise identically unless some member's in-row
/// changed, so ApplyDelta copies clean blocks' arena spans verbatim and
/// resamples only dirty blocks from their recorded seeds. The serial
/// `Generate` path draws from a caller-owned stream that cannot be
/// replayed, so using it marks the collection non-patchable.
class RrCollection {
 public:
  /// Sets sampled per RNG block in GenerateParallel. Part of the
  /// reproducibility contract: changing it changes sampled sets.
  static constexpr std::size_t kGenerateBlockSize = 256;
  /// Salt for deriving block seeds (same shape as RunSharded's derivation,
  /// deliberately a different constant).
  static constexpr uint64_t kGenerateSeedSalt = 0x9E3779B97F4A7C15ULL;
  /// Cap on live index segments; exceeding it merges the adjacent pair
  /// with the fewest sets (O(num_nodes + merged entries) each) until the
  /// cap holds. IMM's <= log2(n) doubling rounds stay under it for graphs
  /// up to ~2^24 nodes; beyond that (or with many tiny appends) a few
  /// cheap merges of the small early segments occur.
  static constexpr std::size_t kMaxIndexSegments = 24;

  /// `track_widths` additionally records the per-set width w(R) (8 bytes
  /// per set), needed only by TIM+'s KPT estimation; total_width() is
  /// always maintained. `build_index = false` disables the incremental
  /// inverted index (Snapshot()/SelectMaxCoverage become unavailable;
  /// SelectMaxCoverageRebuild still works) — used by callers that only
  /// sample, e.g. TIM+'s KPT rounds and the rebuild-baseline bench path.
  RrCollection(const Graph& graph, const InfluenceParams& params,
               bool track_widths = false, bool build_index = true);

  /// Appends `count` RR sets sampled sequentially with `rng` (legacy serial
  /// path; draws are interleaved with the caller's stream), then indexes
  /// the new sets.
  void Generate(std::size_t count, Rng& rng);

  /// Appends `count` RR sets sharded across `pool` (nullptr selects
  /// DefaultThreadPool()) under the RNG-sharding contract above, indexing
  /// the new sets from shard-local partial counts. Output (arena and
  /// index) is independent of the pool's thread count.
  ///
  /// `deadline` (borrowed, may be null) is checked once per *block* at
  /// wave boundaries via CheckN(blocks-in-wave) — tick consumption depends
  /// on the block count alone, never the thread count. On expiry the
  /// call's appends are rolled back entirely (the collection is exactly as
  /// before the call — a partial arena would be thread-count-shaped) and
  /// the deadline's status is returned; callers degrade from whatever
  /// earlier rounds completed.
  Status GenerateParallel(std::size_t count, uint64_t seed,
                          ThreadPool* pool = nullptr,
                          Deadline* deadline = nullptr);

  /// Drops all sets and index segments (keeps capacity) and bumps the
  /// epoch, invalidating every outstanding CoverageSnapshot. Also clears
  /// the generate records, restoring patchability.
  void Clear();

  /// \brief Patches the collection onto a post-delta graph: sets whose
  /// members all kept their in-rows are copied verbatim; every RNG block
  /// containing an affected set is resampled from its recorded seed.
  ///
  /// The result — arena, widths, index — is bitwise identical to a fresh
  /// collection built on `new_graph` by replaying the same
  /// GenerateParallel(count, seed) calls. The inverted index is rebuilt as
  /// a single segment and the epoch is bumped (outstanding snapshots are
  /// invalidated). `new_graph` must outlive this collection; `new_params`
  /// is copied. A node-count change shifts every root draw, so it
  /// resamples all blocks (still from the recorded seeds).
  ///
  /// Fails with InvalidArgument — leaving the collection untouched — if
  /// params/graph sizes mismatch, the diffusion model changed, or the
  /// serial Generate path made the collection non-replayable.
  Status ApplyDelta(const Graph& new_graph, const InfluenceParams& new_params);

  /// False once the serial Generate path has appended sets (their RNG
  /// stream is caller-owned and cannot be replayed). Clear() restores it.
  bool replayable() const { return replayable_; }

  std::size_t num_sets() const { return offsets_.size() - 1; }
  /// Zero-copy view of set i; the root is element 0. Invalidated by
  /// Generate/GenerateParallel/Clear.
  std::span<const NodeId> set(std::size_t i) const {
    return {entries_.data() + offsets_[i], entries_.data() + offsets_[i + 1]};
  }
  /// Width w(R_i): in-degree sum over members (TIM Sec. 4 KPT estimate).
  /// Only valid when constructed with track_widths.
  uint64_t set_width(std::size_t i) const { return widths_[i]; }
  /// Total node entries across all sets (TIM's EPT uses width = in-degree
  /// sum; this is the node-count size used for memory accounting).
  std::size_t total_entries() const { return entries_.size(); }
  /// Sum over sets of the in-degree "width" w(R) (TIM Sec. 4 KPT estimate).
  uint64_t total_width() const { return total_width_; }
  /// Monotone counter bumped by Clear(); snapshots pin the epoch they were
  /// created under and abort if used after it moves.
  uint64_t epoch() const { return epoch_; }

  /// Greedy max-coverage over the collected sets. Returns k seeds and the
  /// fraction of sets covered.
  struct CoverageResult {
    std::vector<NodeId> seeds;
    double covered_fraction = 0.0;
    /// True when a deadline expired mid-selection; `seeds` then holds the
    /// prefix committed before expiry (greedy rounds are prefix-valid).
    bool deadline_hit = false;
  };

  /// Zero-copy CELF view over the live incremental index, pinned to the
  /// sets present when it was created (later appends are ignored; Clear
  /// invalidates — see the lifecycle notes above).
  class CoverageSnapshot {
   public:
    /// Lazy-greedy (CELF) max-coverage over the pinned prefix of sets.
    /// Aborts via HOLIM_CHECK if the owning collection was Cleared after
    /// this snapshot was taken. `deadline` (borrowed, may be null) is
    /// checked once per committed seed: on expiry the prefix selected so
    /// far is returned with `deadline_hit` set (no padding).
    CoverageResult SelectMaxCoverage(uint32_t k,
                                     Deadline* deadline = nullptr) const;

    /// Number of sets this snapshot views (pinned at creation).
    std::size_t num_sets() const { return limit_; }
    /// False once the owning collection has been Cleared.
    bool valid() const { return rr_->epoch_ == epoch_; }

   private:
    friend class RrCollection;
    CoverageSnapshot(const RrCollection* rr, uint64_t epoch,
                     std::size_t limit)
        : rr_(rr), epoch_(epoch), limit_(limit) {}

    const RrCollection* rr_;
    uint64_t epoch_;
    std::size_t limit_;
  };

  /// Snapshot of the current sets for coverage queries. Requires
  /// build_index (checked).
  CoverageSnapshot Snapshot() const;

  /// Shorthand for Snapshot().SelectMaxCoverage(k): CELF lazy greedy
  /// against the live incremental index — each pick pops the stale-max
  /// heap and re-counts that node's uncovered sets instead of eagerly
  /// decrementing every co-member's gain. Ties break toward the smaller
  /// node id.
  CoverageResult SelectMaxCoverage(uint32_t k) const;

  /// Legacy from-scratch path: rebuilds a transient inverted index over
  /// the whole arena on every call, then runs the same CELF. O(total
  /// entries) per call; kept as the reference/baseline for tests and the
  /// bench's incremental_select comparison. Works without build_index.
  CoverageResult SelectMaxCoverageRebuild(uint32_t k) const;

  /// Fraction of sets that contain at least one of `seeds`.
  double CoveredFraction(const std::vector<NodeId>& seeds) const;

  /// Bytes held by the RR arena (the memory-hungry part of TIM+; Fig. 6i).
  /// Excludes the inverted index — see IndexMemoryBytes() — so the metric
  /// stays comparable with pre-index releases.
  std::size_t MemoryBytes() const;

  /// Bytes held by the incremental inverted index (segments + per-node
  /// coverage counts).
  std::size_t IndexMemoryBytes() const;

 private:
  /// One CSR index segment covering sets [first_set, first_set + num_sets):
  /// set ids grouped by node, ascending within each node's range.
  struct IndexSegment {
    std::size_t first_set = 0;
    std::size_t num_sets = 0;
    std::vector<uint32_t> offsets;  // num_nodes + 1
    std::vector<uint32_t> sets;     // set ids grouped by node
  };

  /// One GenerateParallel call: sets [first_set, first_set + count) were
  /// sampled under `seed` with the block decomposition of the RNG-sharding
  /// contract. ApplyDelta replays dirty blocks from these.
  struct GenerateRecord {
    std::size_t first_set = 0;
    std::size_t count = 0;
    uint64_t seed = 0;
  };

  /// Samples one RR set with `rng`, appending its members to `out`
  /// (root first). Returns the set's width.
  uint64_t SampleOne(Rng& rng, EpochSet& visited, std::vector<NodeId>& stack,
                     std::vector<NodeId>& out) const;

  /// Builds one index segment over the not-yet-indexed arena suffix
  /// [indexed_sets_, num_sets()). `new_counts`, when non-null, holds the
  /// per-node member counts of exactly that suffix (the reduced shard
  /// partials of GenerateParallel); otherwise they are recounted from the
  /// arena. Updates cover_count_ and runs compaction.
  void IndexNewSets(const uint32_t* new_counts);

  /// Merges adjacent segment pairs (fewest combined sets first) until the
  /// segment count is back under kMaxIndexSegments.
  void CompactSegments();

  // Re-bindable: ApplyDelta pivots these onto the post-delta epoch. The
  // params are an owned copy so the collection survives the caller's
  // per-epoch param objects going away.
  const Graph* graph_;
  InfluenceParams params_;
  bool track_widths_ = false;
  bool build_index_ = true;
  std::vector<NodeId> entries_;       // flat member arena
  std::vector<std::size_t> offsets_;  // num_sets + 1, offsets_[0] == 0
  std::vector<uint64_t> widths_;      // per-set width; empty unless tracked
  uint64_t total_width_ = 0;
  // Replay log for ApplyDelta (see class comment).
  std::vector<GenerateRecord> records_;
  bool replayable_ = true;
  // Incremental inverted index (see class comment).
  std::vector<IndexSegment> segments_;
  std::vector<uint32_t> cover_count_;  // per node: #indexed sets containing it
  std::size_t indexed_sets_ = 0;       // == num_sets() between generate calls
  uint64_t epoch_ = 0;
  // Scratch for the serial path (GenerateParallel uses per-shard scratch).
  EpochSet visited_;
  std::vector<NodeId> stack_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_RR_SETS_H_

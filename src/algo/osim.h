#ifndef HOLIM_ALGO_OSIM_H_
#define HOLIM_ALGO_OSIM_H_

#include <cstdint>
#include <vector>

#include "algo/score_sweep.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/thread_pool.h"

namespace holim {

/// OSIM's per-node recurrence (Algorithm 5 lines 5-11) bound to the shared
/// sweep kernel. Per node u and level i <= l it maintains:
///  - or_i(u):  weighted sum of *initial* opinions reachable via i-length
///              paths (no opinion-change effects),
///  - alpha_i(u): weighted interaction product Prod p * (2*phi - 1)/2 over
///              i-length paths,
///  - sc_i(u):  accumulated opinion-change contribution,
/// and folds Delta_i(u) = Delta_{i-1}(u)
///              + (or_i(u) + sc_i(u) + o_u * alpha_i(u)) / 2
/// into the final score.
class OsimSweepPolicy {
 public:
  struct Value {
    double or_acc, alpha_acc, sc_acc;
    bool operator==(const Value&) const = default;
  };

  OsimSweepPolicy(const Graph& graph, const InfluenceParams& influence,
                  const OpinionParams& opinions)
      : graph_(graph), influence_(influence), opinions_(opinions) {}

  Value Zero() const { return {0.0, 0.0, 0.0}; }
  // Algorithm 5 line 1 initialisation.
  Value Init(NodeId u) const { return {opinions_.o(u), 1.0, 0.0}; }

  Value Compute(NodeId u, const Value* prev, const EpochSet& excluded) const {
    double or_acc = 0.0, alpha_acc = 0.0, sc_acc = 0.0;
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const NodeId v = neighbors[j];
      if (excluded.Contains(v)) continue;
      const EdgeId e = base + j;
      const double p = influence_.p(e);
      or_acc += p * prev[v].or_acc;                                 // line 6
      alpha_acc += p * prev[v].alpha_acc *
                   (2.0 * opinions_.phi(e) - 1.0) / 2.0;            // line 7
      sc_acc += p * prev[v].sc_acc;                                 // line 8
    }
    sc_acc += opinions_.o(u) * alpha_acc;                           // line 10
    return {or_acc, alpha_acc, sc_acc};
  }

  void AccumulateScore(NodeId u, double* score, const Value& v,
                       uint32_t) const {
    // Algorithm 5 line 11: every level contributes to Delta.
    *score += (v.or_acc + v.sc_acc + opinions_.o(u) * v.alpha_acc) / 2.0;
  }

 private:
  const Graph& graph_;
  const InfluenceParams& influence_;
  const OpinionParams& opinions_;
};

/// \brief OSIM score assignment (paper Algorithm 5) — the opinion-aware
/// extension of EaSyIM, on the same shared sweep kernel (see easyim.h and
/// algo/score_sweep.h for the execution strategies and the determinism
/// contract). Same O(l(m+n)) time / O(n) space contract as EaSyIM on the
/// full-sweep paths (Sec. 3.2.2); the incremental path keeps O(l n) state.
class OsimScorer {
 public:
  OsimScorer(const Graph& graph, const InfluenceParams& influence,
             const OpinionParams& opinions, uint32_t l);

  /// Computes Delta_l for every node into `scores`. Excluded nodes are
  /// removed from the graph and get -infinity.
  void AssignScores(const EpochSet& excluded, std::vector<double>* scores);

  /// Parallel variant: fixed-node-block sharding, bitwise-identical to the
  /// serial result for any thread count.
  void AssignScoresParallel(const EpochSet& excluded,
                            std::vector<double>* scores,
                            ThreadPool* pool = nullptr);

  /// Incremental variant across greedy rounds; see
  /// EasyImScorer::AssignScoresIncremental for the contract (nullptr pool
  /// = serial).
  void AssignScoresIncremental(const EpochSet& excluded,
                               const std::vector<NodeId>* newly_excluded,
                               std::vector<double>* scores,
                               ThreadPool* pool = nullptr);

  uint32_t path_length() const { return engine_.path_length(); }

  /// See EasyImScorer::set_incremental_fallback_fraction.
  void set_incremental_fallback_fraction(double fraction) {
    engine_.set_incremental_fallback_fraction(fraction);
  }

  /// Extra working memory beyond graph/params/opinions (capacity-based).
  std::size_t ScratchBytes() const { return engine_.ScratchBytes(); }

  const ScoreSweepStats& stats() const { return engine_.stats(); }

 private:
  ScoreSweepEngine<OsimSweepPolicy> engine_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_OSIM_H_

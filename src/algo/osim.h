#ifndef HOLIM_ALGO_OSIM_H_
#define HOLIM_ALGO_OSIM_H_

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"
#include "util/thread_pool.h"

namespace holim {

/// \brief OSIM score assignment (paper Algorithm 5) — the opinion-aware
/// extension of EaSyIM.
///
/// Per node u and path length i <= l it maintains:
///  - or_i(u):  weighted sum of *initial* opinions reachable via i-length
///              paths (no opinion-change effects),
///  - alpha_i(u): weighted interaction product Prod p * (2*phi - 1)/2 over
///              i-length paths,
///  - sc_i(u):  accumulated opinion-change contribution,
/// and folds them into Delta_i(u) = Delta_{i-1}(u)
///              + (or_i(u) + sc_i(u) + o_u * alpha_i(u)) / 2.
///
/// Same O(l(m+n)) time / O(n) space contract as EaSyIM (Sec. 3.2.2).
class OsimScorer {
 public:
  OsimScorer(const Graph& graph, const InfluenceParams& influence,
             const OpinionParams& opinions, uint32_t l);

  /// Computes Delta_l for every node into `scores`. Excluded nodes are
  /// removed from the graph and get -infinity.
  void AssignScores(const EpochSet& excluded, std::vector<double>* scores);

  /// Parallel variant: each sweep is a race-free data-parallel pass over
  /// nodes, bitwise-identical to the serial result (see easyim.h).
  void AssignScoresParallel(const EpochSet& excluded,
                            std::vector<double>* scores,
                            ThreadPool* pool = nullptr);

  uint32_t path_length() const { return l_; }

  std::size_t ScratchBytes() const {
    return (or_prev_.capacity() + or_cur_.capacity() + alpha_prev_.capacity() +
            alpha_cur_.capacity() + sc_prev_.capacity() + sc_cur_.capacity() +
            delta_.capacity()) *
           sizeof(double);
  }

 private:
  const Graph& graph_;
  const InfluenceParams& influence_;
  const OpinionParams& opinions_;
  uint32_t l_;
  std::vector<double> or_prev_, or_cur_;
  std::vector<double> alpha_prev_, alpha_cur_;
  std::vector<double> sc_prev_, sc_cur_;
  std::vector<double> delta_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_OSIM_H_

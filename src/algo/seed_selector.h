#ifndef HOLIM_ALGO_SEED_SELECTOR_H_
#define HOLIM_ALGO_SEED_SELECTOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/deadline.h"
#include "util/status.h"

namespace holim {

/// Outcome of a seed-selection run, with the bookkeeping the paper's
/// efficiency/scalability experiments report (Figs. 5g/5h, 6f-6j).
struct SeedSelection {
  std::vector<NodeId> seeds;
  double elapsed_seconds = 0.0;
  /// Additional RSS the algorithm allocated beyond the loaded graph
  /// ("execution memory" in Figs. 5h/6j), best-effort.
  std::size_t overhead_bytes = 0;
  /// Deterministic working-set accounting (capacity-based, same convention
  /// as MemoryFootprintBytes across graph/ and model/): the scorer-internal
  /// scratch buffers, where the algorithm reports them. 0 if N/A. Unlike
  /// overhead_bytes this is exact and reproducible below RSS granularity.
  std::size_t scratch_bytes = 0;
  /// Algorithm-internal score of each chosen seed (empty if N/A).
  std::vector<double> seed_scores;
  /// True when a deadline/cancellation stopped the run early; `seeds` then
  /// holds the prefix completed before expiry (possibly empty). Not an
  /// error: greedy rounds are prefix-valid, so the caller decides whether
  /// to degrade (HolimEngine's tier ladder) or fail.
  bool degraded = false;
  /// The deadline status that stopped a degraded run (kDeadlineExceeded or
  /// kCancelled); kOk when `degraded` is false.
  Status stop_status;
};

/// \brief Common interface for all influence-maximization algorithms.
///
/// Implementations bind a graph + parameters at construction; Select(k)
/// returns the chosen seed set together with timing/memory bookkeeping.
class SeedSelector {
 public:
  virtual ~SeedSelector() = default;

  /// Short stable identifier, e.g. "EaSyIM(l=3)".
  virtual std::string name() const = 0;

  /// Selects k seeds. Implementations must be deterministic in their
  /// constructor-provided seed — repeated Select calls on one instance
  /// return bitwise-identical selections (the contract the engine
  /// Workspace's warm selector reuse rests on).
  virtual Result<SeedSelection> Select(uint32_t k) = 0;

  /// Budgeted selection (QueryKind::kBudgeted): benefit-per-cost greedy
  /// under a total `budget`, at most `max_seeds` seeds. `costs` holds one
  /// positive cost per node and must outlive the call. Selection stops
  /// when no remaining node fits the residual budget (candidates whose
  /// cost exceeds it are dropped permanently — their gain only shrinks
  /// while their cost is fixed, so they can never fit later). Same
  /// determinism contract as Select. The default reports no support; the
  /// engine gates callers through AlgorithmInfo::supported_queries, so
  /// this surfaces only on direct misuse.
  virtual Result<SeedSelection> SelectBudgeted(
      uint32_t max_seeds, std::span<const double> costs, double budget) {
    (void)max_seeds;
    (void)costs;
    (void)budget;
    return Status::Unimplemented(name() +
                                 " does not support budgeted selection");
  }

  /// Algorithm-specific counters of the most recent Select call (name ->
  /// value), e.g. TIM+'s theta / theta_capped / RR arena bytes. Empty when
  /// the algorithm keeps no extra counters. HolimEngine copies these into
  /// SolveResult::stats.
  virtual std::vector<std::pair<std::string, double>> LastRunStats() const {
    return {};
  }

  /// Bytes of state this selector retains between Select calls
  /// (capacity-based, the repo-wide MemoryFootprintBytes convention): the
  /// scorer scratch of EaSyIM/OSIM, StaticGreedy's snapshot sample. 0 for
  /// stateless selectors. The engine Workspace charges cached selectors
  /// against its budget through this.
  virtual std::size_t MemoryFootprintBytes() const { return 0; }

  /// Binds a cooperative deadline for subsequent Select/SelectBudgeted
  /// calls (borrowed; the engine clears it before the selector outlives
  /// the solve). Null (the default) restores the unbounded behavior —
  /// with no deadline bound, runs are byte-identical to pre-deadline
  /// builds. Deadline-aware selectors check it at round boundaries and
  /// return a degraded prefix SeedSelection on expiry; selectors that
  /// ignore it simply run to completion.
  void set_deadline(Deadline* deadline) { deadline_ = deadline; }

 protected:
  Deadline* deadline_ = nullptr;
};

}  // namespace holim

#endif  // HOLIM_ALGO_SEED_SELECTOR_H_

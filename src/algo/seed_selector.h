#ifndef HOLIM_ALGO_SEED_SELECTOR_H_
#define HOLIM_ALGO_SEED_SELECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace holim {

/// Outcome of a seed-selection run, with the bookkeeping the paper's
/// efficiency/scalability experiments report (Figs. 5g/5h, 6f-6j).
struct SeedSelection {
  std::vector<NodeId> seeds;
  double elapsed_seconds = 0.0;
  /// Additional RSS the algorithm allocated beyond the loaded graph
  /// ("execution memory" in Figs. 5h/6j), best-effort.
  std::size_t overhead_bytes = 0;
  /// Deterministic working-set accounting (capacity-based, same convention
  /// as MemoryFootprintBytes across graph/ and model/): the scorer-internal
  /// scratch buffers, where the algorithm reports them. 0 if N/A. Unlike
  /// overhead_bytes this is exact and reproducible below RSS granularity.
  std::size_t scratch_bytes = 0;
  /// Algorithm-internal score of each chosen seed (empty if N/A).
  std::vector<double> seed_scores;
};

/// \brief Common interface for all influence-maximization algorithms.
///
/// Implementations bind a graph + parameters at construction; Select(k)
/// returns the chosen seed set together with timing/memory bookkeeping.
class SeedSelector {
 public:
  virtual ~SeedSelector() = default;

  /// Short stable identifier, e.g. "EaSyIM(l=3)".
  virtual std::string name() const = 0;

  /// Selects k seeds. Implementations must be deterministic in their
  /// constructor-provided seed.
  virtual Result<SeedSelection> Select(uint32_t k) = 0;
};

}  // namespace holim

#endif  // HOLIM_ALGO_SEED_SELECTOR_H_

#include "algo/greedy.h"

#include <limits>

#include "util/memory.h"
#include "util/timer.h"

namespace holim {

SpreadObjective::SpreadObjective(const Graph& graph,
                                 const InfluenceParams& params,
                                 const McOptions& options)
    : graph_(graph), params_(params), options_(options) {}

double SpreadObjective::Evaluate(const std::vector<NodeId>& seeds) {
  return EstimateSpread(graph_, params_, seeds, options_);
}

EffectiveOpinionObjective::EffectiveOpinionObjective(
    const Graph& graph, const InfluenceParams& influence,
    const OpinionParams& opinions, OiBase base, double lambda,
    const McOptions& options)
    : graph_(graph),
      influence_(influence),
      opinions_(opinions),
      base_(base),
      lambda_(lambda),
      options_(options) {}

double EffectiveOpinionObjective::Evaluate(const std::vector<NodeId>& seeds) {
  return EstimateOpinionSpread(graph_, influence_, opinions_, base_, seeds,
                               lambda_, options_)
      .effective_opinion_spread;
}

SketchSpreadObjective::SketchSpreadObjective(
    std::shared_ptr<const SketchOracle> oracle, bool use_session,
    SketchEval eval, std::vector<double> node_weights)
    : oracle_(std::move(oracle)),
      eval_(eval),
      weights_(std::move(node_weights)),
      session_(*oracle_, eval, weights_),
      use_session_(use_session) {}

double SketchSpreadObjective::Evaluate(const std::vector<NodeId>& seeds) {
  if (!weights_.empty()) {
    return oracle_->EstimateWeighted(seeds, weights_, eval_);
  }
  return oracle_->Estimate(seeds, eval_);
}

bool SketchSpreadObjective::StartSession() {
  if (!use_session_) return false;
  session_.Reset();
  return true;
}

double SketchSpreadObjective::SessionMarginalGain(NodeId u) {
  return session_.MarginalGain(u);
}

double SketchSpreadObjective::SessionCommit(NodeId u) {
  return session_.Commit(u);
}

GreedySelector::GreedySelector(const Graph& graph,
                               std::shared_ptr<McObjective> objective,
                               std::string name)
    : graph_(graph), objective_(std::move(objective)), name_(std::move(name)) {}

Result<SeedSelection> GreedySelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  std::vector<char> chosen(graph_.num_nodes(), 0);
  if (objective_->StartSession()) {
    // Incremental path (sketch-backed objectives): identical hill-climb —
    // scan candidates in ascending id, strict improvement — but each
    // marginal gain is an incremental session probe instead of a whole-set
    // re-evaluation, and the winner's frontier is committed once.
    for (uint32_t i = 0; i < k; ++i) {
      if (deadline_ && !deadline_->Check().ok()) {
        selection.degraded = true;
        selection.stop_status = deadline_->status();
        break;
      }
      NodeId best = kInvalidNode;
      double best_gain = -std::numeric_limits<double>::infinity();
      for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
        if (chosen[u]) continue;
        const double gain = objective_->SessionMarginalGain(u);
        if (gain > best_gain) {
          best_gain = gain;
          best = u;
        }
      }
      if (best == kInvalidNode) break;
      objective_->SessionCommit(best);
      chosen[best] = 1;
      selection.seeds.push_back(best);
      selection.seed_scores.push_back(best_gain);
    }
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }
  double current_value = 0.0;
  std::vector<NodeId> trial;
  for (uint32_t i = 0; i < k; ++i) {
    if (deadline_ && !deadline_->Check().ok()) {
      selection.degraded = true;
      selection.stop_status = deadline_->status();
      break;
    }
    NodeId best = kInvalidNode;
    double best_value = -std::numeric_limits<double>::infinity();
    trial = selection.seeds;
    trial.push_back(0);  // placeholder slot for the candidate
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (chosen[u]) continue;
      trial.back() = u;
      const double value = objective_->Evaluate(trial);
      if (value > best_value) {
        best_value = value;
        best = u;
      }
    }
    if (deadline_ && deadline_->StopRequested()) {
      // Expiry mid-round (wall clock or cancellation) leaves partial MC
      // estimates behind this round's scores; discard the round instead of
      // committing a seed scored on them. Never reached in work-budget
      // mode, where expiry only lands at the round-top Check.
      selection.degraded = true;
      selection.stop_status = deadline_->Check();
      break;
    }
    if (best == kInvalidNode) break;
    chosen[best] = 1;
    selection.seeds.push_back(best);
    selection.seed_scores.push_back(best_value - current_value);
    current_value = best_value;
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

Result<SeedSelection> GreedySelector::SelectBudgeted(
    uint32_t max_seeds, std::span<const double> costs, double budget) {
  if (max_seeds == 0) return Status::InvalidArgument("max_seeds must be positive");
  if (costs.size() != graph_.num_nodes()) {
    return Status::InvalidArgument("cost/node count mismatch");
  }
  if (!(budget > 0.0)) {
    return Status::InvalidArgument("budget must be positive");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  std::vector<char> chosen(graph_.num_nodes(), 0);
  double remaining = budget;
  if (objective_->StartSession()) {
    // Eager benefit-per-cost rounds: every affordable candidate is probed
    // each round — the evaluate-everything reference for the lazy CELF
    // path. With unit costs and budget == k each round degenerates to
    // Select's hill-climb (gain / 1.0 == gain, same ascending-id strict->
    // scan), which is the uniform-cost parity contract.
    while (selection.seeds.size() < max_seeds) {
      if (deadline_ && !deadline_->Check().ok()) {
        selection.degraded = true;
        selection.stop_status = deadline_->status();
        break;
      }
      NodeId best = kInvalidNode;
      double best_ratio = -std::numeric_limits<double>::infinity();
      double best_gain = 0.0;
      for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
        if (chosen[u] || costs[u] > remaining) continue;
        const double gain = objective_->SessionMarginalGain(u);
        const double ratio = gain / costs[u];
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_gain = gain;
          best = u;
        }
      }
      if (best == kInvalidNode) break;  // nothing fits the residual budget
      objective_->SessionCommit(best);
      chosen[best] = 1;
      remaining -= costs[best];
      selection.seeds.push_back(best);
      selection.seed_scores.push_back(best_gain);
    }
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }
  double current_value = 0.0;
  std::vector<NodeId> trial;
  while (selection.seeds.size() < max_seeds) {
    if (deadline_ && !deadline_->Check().ok()) {
      selection.degraded = true;
      selection.stop_status = deadline_->status();
      break;
    }
    NodeId best = kInvalidNode;
    double best_ratio = -std::numeric_limits<double>::infinity();
    double best_value = 0.0;
    trial = selection.seeds;
    trial.push_back(0);  // placeholder slot for the candidate
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (chosen[u] || costs[u] > remaining) continue;
      trial.back() = u;
      const double value = objective_->Evaluate(trial);
      const double ratio = (value - current_value) / costs[u];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_value = value;
        best = u;
      }
    }
    if (deadline_ && deadline_->StopRequested()) {
      // Same mid-round discard as Select's MC path (see above).
      selection.degraded = true;
      selection.stop_status = deadline_->Check();
      break;
    }
    if (best == kInvalidNode) break;
    chosen[best] = 1;
    remaining -= costs[best];
    selection.seeds.push_back(best);
    selection.seed_scores.push_back(best_value - current_value);
    current_value = best_value;
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

#ifndef HOLIM_ALGO_IMRANK_H_
#define HOLIM_ALGO_IMRANK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Tuning parameters of IMRank (Cheng et al., SIGIR'14).
struct ImRankOptions {
  /// Iterations of the rank/score fixpoint loop (the paper reports fast
  /// convergence; ranks usually stabilize within ~10 rounds).
  uint32_t max_iterations = 20;
};

/// \brief IMRank — influence maximization via self-consistent ranking.
///
/// Idea: if the ranking were correct, a greedy selection would allocate
/// each node's influence to the *highest-ranked* node that reaches it.
/// Last-to-First Allocation (LFA) simulates that: starting from everyone
/// owning their own unit of influence, nodes are visited from lowest rank
/// to highest, and each visited node transfers p(v,u)-weighted shares of
/// its remaining mass to every higher-ranked in-neighbor v. The resulting
/// per-node mass is the new score; iterate until the ranking is
/// self-consistent (fixpoint). Top-k of the converged ranking are the
/// seeds — no Monte-Carlo at all, which is IMRank's selling point.
class ImRankSelector : public SeedSelector {
 public:
  ImRankSelector(const Graph& graph, const InfluenceParams& params,
                 const ImRankOptions& options = {});

  std::string name() const override { return "IMRank"; }
  Result<SeedSelection> Select(uint32_t k) override;

  /// One LFA pass given the ranking implied by `scores` (descending);
  /// exposed for tests. Returns the reallocated mass per node.
  std::vector<double> LastToFirstAllocation(
      const std::vector<double>& scores) const;

  /// Number of iterations the last Select() needed to converge.
  uint32_t last_iterations() const { return last_iterations_; }

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  ImRankOptions options_;
  uint32_t last_iterations_ = 0;
};

}  // namespace holim

#endif  // HOLIM_ALGO_IMRANK_H_

#include "algo/osim.h"

#include <limits>

#include "util/logging.h"

namespace holim {

OsimScorer::OsimScorer(const Graph& graph, const InfluenceParams& influence,
                       const OpinionParams& opinions, uint32_t l)
    : graph_(graph),
      influence_(influence),
      opinions_(opinions),
      l_(l),
      or_prev_(graph.num_nodes()),
      or_cur_(graph.num_nodes()),
      alpha_prev_(graph.num_nodes()),
      alpha_cur_(graph.num_nodes()),
      sc_prev_(graph.num_nodes()),
      sc_cur_(graph.num_nodes()),
      delta_(graph.num_nodes()) {
  HOLIM_CHECK(l >= 1) << "path length l must be >= 1";
  HOLIM_CHECK(influence.probability.size() == graph.num_edges());
  HOLIM_CHECK(opinions.opinion.size() == graph.num_nodes());
  HOLIM_CHECK(opinions.interaction.size() == graph.num_edges());
}

namespace {

/// One node's sweep of Algorithm 5 lines 5-11; returns the Delta increment.
/// Shared by the serial and parallel drivers for bitwise-identical results.
struct SweepResult {
  double or_acc, alpha_acc, sc_acc, delta_inc;
};

inline SweepResult SweepNode(const Graph& graph,
                             const InfluenceParams& influence,
                             const OpinionParams& opinions,
                             const EpochSet& excluded,
                             const std::vector<double>& or_prev,
                             const std::vector<double>& alpha_prev,
                             const std::vector<double>& sc_prev, NodeId u) {
  if (excluded.Contains(u)) return {0.0, 0.0, 0.0, 0.0};
  double or_acc = 0.0, alpha_acc = 0.0, sc_acc = 0.0;
  const EdgeId base = graph.OutEdgeBegin(u);
  auto neighbors = graph.OutNeighbors(u);
  for (std::size_t j = 0; j < neighbors.size(); ++j) {
    const NodeId v = neighbors[j];
    if (excluded.Contains(v)) continue;
    const EdgeId e = base + j;
    const double p = influence.p(e);
    or_acc += p * or_prev[v];                                       // line 6
    alpha_acc += p * alpha_prev[v] *
                 (2.0 * opinions.phi(e) - 1.0) / 2.0;               // line 7
    sc_acc += p * sc_prev[v];                                       // line 8
  }
  const double o_u = opinions.o(u);
  sc_acc += o_u * alpha_acc;                                        // line 10
  return {or_acc, alpha_acc, sc_acc,
          (or_acc + sc_acc + o_u * alpha_acc) / 2.0};               // line 11
}

}  // namespace

void OsimScorer::AssignScores(const EpochSet& excluded,
                              std::vector<double>* scores) {
  const NodeId n = graph_.num_nodes();
  // Algorithm 5 line 1 initialisation.
  for (NodeId u = 0; u < n; ++u) {
    alpha_prev_[u] = 1.0;
    or_prev_[u] = opinions_.o(u);
    sc_prev_[u] = 0.0;
    delta_[u] = 0.0;
  }
  for (uint32_t i = 1; i <= l_; ++i) {
    for (NodeId u = 0; u < n; ++u) {
      const SweepResult r = SweepNode(graph_, influence_, opinions_, excluded,
                                      or_prev_, alpha_prev_, sc_prev_, u);
      or_cur_[u] = r.or_acc;
      alpha_cur_[u] = r.alpha_acc;
      sc_cur_[u] = r.sc_acc;
      delta_[u] += r.delta_inc;
    }
    std::swap(or_prev_, or_cur_);
    std::swap(alpha_prev_, alpha_cur_);
    std::swap(sc_prev_, sc_cur_);
  }
  scores->assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    (*scores)[u] = excluded.Contains(u)
                       ? -std::numeric_limits<double>::infinity()
                       : delta_[u];
  }
}

void OsimScorer::AssignScoresParallel(const EpochSet& excluded,
                                      std::vector<double>* scores,
                                      ThreadPool* pool) {
  ThreadPool& workers = pool ? *pool : DefaultThreadPool();
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    alpha_prev_[u] = 1.0;
    or_prev_[u] = opinions_.o(u);
    sc_prev_[u] = 0.0;
    delta_[u] = 0.0;
  }
  for (uint32_t i = 1; i <= l_; ++i) {
    // Each sweep reads the prev buffers and writes slot u only: race-free.
    workers.ParallelFor(n, [&](std::size_t idx) {
      const NodeId u = static_cast<NodeId>(idx);
      const SweepResult r = SweepNode(graph_, influence_, opinions_, excluded,
                                      or_prev_, alpha_prev_, sc_prev_, u);
      or_cur_[u] = r.or_acc;
      alpha_cur_[u] = r.alpha_acc;
      sc_cur_[u] = r.sc_acc;
      delta_[u] += r.delta_inc;
    });
    std::swap(or_prev_, or_cur_);
    std::swap(alpha_prev_, alpha_cur_);
    std::swap(sc_prev_, sc_cur_);
  }
  scores->assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    (*scores)[u] = excluded.Contains(u)
                       ? -std::numeric_limits<double>::infinity()
                       : delta_[u];
  }
}

}  // namespace holim

#include "algo/osim.h"

#include "util/logging.h"

namespace holim {

OsimScorer::OsimScorer(const Graph& graph, const InfluenceParams& influence,
                       const OpinionParams& opinions, uint32_t l)
    : engine_(graph, OsimSweepPolicy(graph, influence, opinions), l) {
  HOLIM_CHECK(influence.probability.size() == graph.num_edges());
  HOLIM_CHECK(opinions.opinion.size() == graph.num_nodes());
  HOLIM_CHECK(opinions.interaction.size() == graph.num_edges());
}

void OsimScorer::AssignScores(const EpochSet& excluded,
                              std::vector<double>* scores) {
  engine_.FullSweep(excluded, scores);
}

void OsimScorer::AssignScoresParallel(const EpochSet& excluded,
                                      std::vector<double>* scores,
                                      ThreadPool* pool) {
  engine_.FullSweep(excluded, scores, pool ? pool : &DefaultThreadPool());
}

void OsimScorer::AssignScoresIncremental(
    const EpochSet& excluded, const std::vector<NodeId>* newly_excluded,
    std::vector<double>* scores, ThreadPool* pool) {
  engine_.Rescore(excluded, newly_excluded, scores, pool);
}

}  // namespace holim

#include "algo/asim.h"

#include <limits>

#include "algo/score_greedy.h"
#include "util/logging.h"

namespace holim {

AsimSelector::AsimSelector(const Graph& graph, const InfluenceParams& params,
                           const AsimOptions& options)
    : graph_(graph),
      params_(params),
      options_(options),
      prev_(graph.num_nodes(), 0.0),
      cur_(graph.num_nodes(), 0.0) {
  HOLIM_CHECK(options.l >= 1) << "l must be >= 1";
  HOLIM_CHECK(options.damping > 0.0 && options.damping <= 1.0)
      << "damping in (0, 1]";
}

std::string AsimSelector::name() const {
  return "ASIM(l=" + std::to_string(options_.l) + ")";
}

void AsimSelector::AssignScores(const EpochSet& excluded,
                                std::vector<double>* scores) {
  const NodeId n = graph_.num_nodes();
  std::fill(prev_.begin(), prev_.end(), 0.0);
  // C_i(u) accumulates damped walk counts: each hop multiplies by damping
  // regardless of the edge's own probability (ASIM is probability-blind).
  for (uint32_t i = 1; i <= options_.l; ++i) {
    for (NodeId u = 0; u < n; ++u) {
      if (excluded.Contains(u)) {
        cur_[u] = 0.0;
        continue;
      }
      double acc = 0.0;
      for (NodeId v : graph_.OutNeighbors(u)) {
        if (excluded.Contains(v)) continue;
        acc += options_.damping * (1.0 + prev_[v]);
      }
      cur_[u] = acc;
    }
    std::swap(prev_, cur_);
  }
  scores->assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    (*scores)[u] = excluded.Contains(u)
                       ? -std::numeric_limits<double>::infinity()
                       : prev_[u];
  }
}

Result<SeedSelection> AsimSelector::Select(uint32_t k) {
  ScoreGreedyOptions options;
  options.activation = ActivationStrategy::kExpectedReach;
  ScoreGreedy driver(
      graph_,
      [this](const EpochSet& excluded, std::vector<double>* scores) {
        AssignScores(excluded, scores);
      },
      options);
  driver.set_edge_probability(&params_.probability);
  driver.set_max_hops(options_.l);
  return driver.Select(k);
}

}  // namespace holim

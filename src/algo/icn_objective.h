#ifndef HOLIM_ALGO_ICN_OBJECTIVE_H_
#define HOLIM_ALGO_ICN_OBJECTIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "algo/greedy.h"
#include "diffusion/icn_model.h"
#include "diffusion/sketch_oracle.h"
#include "diffusion/spread_estimator.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// \brief Expected *positive* spread under IC-N (Chen et al., SDM'11) —
/// the optimization target of the paper's first opinion-aware competitor.
///
/// IC-N keeps submodularity thanks to the uniform quality factor (the very
/// property the paper criticizes as "constrained and specific", Sec. 1), so
/// plugging this objective into GreedySelector/CelfSelector yields the
/// classical (1-1/e)-approximate algorithm for that model. Benchmarks use
/// it as the IC-N selection strategy when comparing opinion-aware models.
class IcnPositiveSpreadObjective : public McObjective {
 public:
  /// With a non-null `sketch` the objective evaluates over the oracle's
  /// presampled worlds (SketchOracle::EstimateIcnPositive — exact in the
  /// quality flips given the worlds) instead of fresh Monte-Carlo runs;
  /// `options` is then only kept for reporting. The oracle must be built
  /// on the same graph/params. `eval` picks the oracle traversal (results
  /// are bitwise identical either way).
  IcnPositiveSpreadObjective(const Graph& graph,
                             const InfluenceParams& params,
                             double quality_factor, const McOptions& options,
                             std::shared_ptr<const SketchOracle> sketch =
                                 nullptr,
                             SketchEval eval = SketchEval::kBitParallel);

  std::string name() const override { return "icn_positive"; }
  double Evaluate(const std::vector<NodeId>& seeds) override;

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  double quality_factor_;
  McOptions options_;
  std::shared_ptr<const SketchOracle> sketch_;
  SketchEval eval_;
};

/// Monte-Carlo estimate of the expected positive spread under IC-N.
double EstimateIcnPositiveSpread(const Graph& graph,
                                 const InfluenceParams& params,
                                 double quality_factor,
                                 const std::vector<NodeId>& seeds,
                                 const McOptions& options = {});

}  // namespace holim

#endif  // HOLIM_ALGO_ICN_OBJECTIVE_H_

#ifndef HOLIM_ALGO_TIM_PLUS_H_
#define HOLIM_ALGO_TIM_PLUS_H_

#include <cstdint>
#include <string>

#include "algo/rr_sets.h"
#include "algo/seed_selector.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Tuning parameters of TIM+ (Tang et al., SIGMOD'14).
struct TimPlusOptions {
  double epsilon = 0.1;   // approximation slack (paper Sec. 4 uses 0.1)
  double ell = 1.0;       // failure probability exponent: 1 - n^-ell
  uint64_t seed = 99;
  /// Safety cap on theta so a mis-parameterized run cannot OOM the host;
  /// 0 disables. When the cap binds, the run records `theta_capped`.
  std::size_t max_theta = 0;
  /// Pool for sharded RR-set generation (nullptr -> DefaultThreadPool()).
  /// Selected seeds are identical for every pool size (see rr_sets.h).
  ThreadPool* pool = nullptr;
};

/// \brief TIM+ — two-phase RIS influence maximization.
///
/// Phase 1 (parameter estimation): KPT* is estimated by repeatedly doubling
/// the RR-sample size until the average set "width" certifies a lower bound
/// on the optimum; an intermediate greedy refinement tightens it (TIM's
/// Algorithms 2-3). Phase 2 (node selection): theta = lambda / KPT+ RR sets
/// are drawn and greedy max-coverage picks k seeds.
///
/// TIM+'s defining trait for this paper is its memory footprint: theta RR
/// sets are all held in RAM, which is what Figs. 6i/6j and Table 3 measure.
class TimPlusSelector : public SeedSelector {
 public:
  TimPlusSelector(const Graph& graph, const InfluenceParams& params,
                  const TimPlusOptions& options = {});

  std::string name() const override;
  Result<SeedSelection> Select(uint32_t k) override;

  /// Statistics of the last run (for the scalability experiments).
  struct RunStats {
    double kpt_star = 0.0;
    double kpt_plus = 0.0;
    std::size_t theta = 0;
    bool theta_capped = false;
    /// RR arena only (paper Fig. 6i metric; comparable across releases).
    std::size_t rr_memory_bytes = 0;
    /// Persistent incremental inverted index on top of the arena.
    std::size_t rr_index_bytes = 0;
  };
  const RunStats& last_run_stats() const { return stats_; }

  /// RunStats flattened for SolveResult::stats (theta_capped as 0/1).
  std::vector<std::pair<std::string, double>> LastRunStats() const override {
    return {{"kpt_star", stats_.kpt_star},
            {"kpt_plus", stats_.kpt_plus},
            {"theta", static_cast<double>(stats_.theta)},
            {"theta_capped", stats_.theta_capped ? 1.0 : 0.0},
            {"rr_memory_bytes", static_cast<double>(stats_.rr_memory_bytes)},
            {"rr_index_bytes", static_cast<double>(stats_.rr_index_bytes)}};
  }

 private:
  double EstimateKpt(uint32_t k, Rng& rng);
  double RefineKpt(uint32_t k, double kpt_star, Rng& rng);

  const Graph& graph_;
  const InfluenceParams& params_;
  TimPlusOptions options_;
  RunStats stats_;
};

/// log(n choose k) via lgamma — shared by TIM+ and IMM thresholds.
double LogNChooseK(uint64_t n, uint64_t k);

}  // namespace holim

#endif  // HOLIM_ALGO_TIM_PLUS_H_

#ifndef HOLIM_ALGO_GREEDY_H_
#define HOLIM_ALGO_GREEDY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "diffusion/oi_model.h"
#include "diffusion/sketch_oracle.h"
#include "diffusion/spread_estimator.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {

/// \brief Set-function objective evaluated by Monte Carlo. Both greedy
/// variants and CELF/CELF++ hill-climb one of these.
class McObjective {
 public:
  virtual ~McObjective() = default;
  virtual std::string name() const = 0;
  /// Expected objective value of the seed set (sigma or sigma_o_lambda).
  virtual double Evaluate(const std::vector<NodeId>& seeds) = 0;

  /// Optional incremental marginal-gain session, implemented by
  /// snapshot-backed objectives (SketchSpreadObjective). StartSession()
  /// (re)opens a session with an empty committed seed set and returns true
  /// when supported; the greedy/CELF selectors then drive
  /// SessionMarginalGain/SessionCommit instead of whole-set Evaluate
  /// calls, which turns each marginal-gain query into a near-O(touched)
  /// incremental probe. Contract, on the objective's own (frozen)
  /// randomness:
  ///   SessionMarginalGain(u) == Evaluate(S + u) - Evaluate(S)
  /// for the committed set S; SessionCommit(u) adds u to S and returns the
  /// same gain. The default implementation reports no session support and
  /// the selectors fall back to the Monte-Carlo Evaluate path.
  virtual bool StartSession() { return false; }
  virtual double SessionMarginalGain(NodeId /*u*/) { return 0.0; }
  virtual double SessionCommit(NodeId /*u*/) { return 0.0; }
};

/// Opinion-oblivious expected spread sigma(S) (IM objective).
class SpreadObjective : public McObjective {
 public:
  SpreadObjective(const Graph& graph, const InfluenceParams& params,
                  const McOptions& options);
  std::string name() const override { return "sigma"; }
  double Evaluate(const std::vector<NodeId>& seeds) override;

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  McOptions options_;
};

/// Opinion-aware expected effective opinion spread sigma_o_lambda(S)
/// (MEO objective; Modified-GREEDY in the paper's Appendix A).
class EffectiveOpinionObjective : public McObjective {
 public:
  EffectiveOpinionObjective(const Graph& graph,
                            const InfluenceParams& influence,
                            const OpinionParams& opinions, OiBase base,
                            double lambda, const McOptions& options);
  std::string name() const override { return "sigma_o"; }
  double Evaluate(const std::vector<NodeId>& seeds) override;

 private:
  const Graph& graph_;
  const InfluenceParams& influence_;
  const OpinionParams& opinions_;
  OiBase base_;
  double lambda_;
  McOptions options_;
};

/// \brief sigma(S) on a frozen set of presampled live-edge snapshots (the
/// StaticGreedy/sketch estimator family) — the `--oracle=sketch` backend
/// for GreedySelector/CelfSelector and the spread benches.
///
/// Evaluate() is a one-shot batch reachability count over the oracle's
/// packed arena; the session API exposes the oracle's activate-once
/// incremental evaluator, so a full greedy run explores each (snapshot,
/// node) pair at most once. On the static sample marginal gains are
/// exactly submodular (integer newly-reachable counts), so CELF's lazy
/// bound never misranks and CELF picks the same seeds as eager greedy
/// over the same frozen snapshots.
class SketchSpreadObjective : public McObjective {
 public:
  /// `use_session = false` disables the incremental session (every call
  /// goes through one-shot Estimate) — the baseline the incremental path
  /// is benchmarked against. `eval` picks the oracle traversal (bitwise-
  /// identical results either way; scalar is the differential-testing
  /// reference). A non-empty `node_weights` (one finite weight >= 0 per
  /// node) switches the objective to the weighted spread sigma_w
  /// (targeted IM); the objective owns the copy, so the oracle session it
  /// opens never dangles into caller storage. All-ones weights are
  /// bitwise-identical to the unweighted objective (see
  /// SketchOracle::EstimateWeighted).
  explicit SketchSpreadObjective(std::shared_ptr<const SketchOracle> oracle,
                                 bool use_session = true,
                                 SketchEval eval = SketchEval::kBitParallel,
                                 std::vector<double> node_weights = {});
  std::string name() const override {
    return weights_.empty() ? "sigma_sketch" : "sigma_sketch_w";
  }
  double Evaluate(const std::vector<NodeId>& seeds) override;
  bool StartSession() override;
  double SessionMarginalGain(NodeId u) override;
  double SessionCommit(NodeId u) override;

  const SketchOracle& oracle() const { return *oracle_; }

 private:
  std::shared_ptr<const SketchOracle> oracle_;
  SketchEval eval_;
  // Declared before session_: the session holds a span into this vector.
  std::vector<double> weights_;
  SketchOracle::Session session_;
  bool use_session_;
};

/// \brief Kempe et al.'s GREEDY: k rounds, each evaluating the marginal gain
/// of every remaining node via Monte Carlo. O(k n r (m+n)) — the gold
/// standard for quality, intractable beyond small graphs (paper Sec. 5).
///
/// With an EffectiveOpinionObjective this is exactly the paper's
/// Modified-GREEDY (Appendix A, Algorithm 6).
class GreedySelector : public SeedSelector {
 public:
  GreedySelector(const Graph& graph, std::shared_ptr<McObjective> objective,
                 std::string name = "GREEDY");

  std::string name() const override { return name_; }
  Result<SeedSelection> Select(uint32_t k) override;
  /// Eager benefit-per-cost greedy: each round scans every affordable
  /// candidate's gain/cost ratio (ties toward the smaller node id, like
  /// Select) and commits the best. The evaluate-everything reference the
  /// lazy budgeted CELF is benchmarked against. With uniform unit costs
  /// and budget == k the selection is bitwise-identical to Select(k).
  Result<SeedSelection> SelectBudgeted(uint32_t max_seeds,
                                       std::span<const double> costs,
                                       double budget) override;

 private:
  const Graph& graph_;
  std::shared_ptr<McObjective> objective_;
  std::string name_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_GREEDY_H_

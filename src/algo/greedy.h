#ifndef HOLIM_ALGO_GREEDY_H_
#define HOLIM_ALGO_GREEDY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "diffusion/oi_model.h"
#include "diffusion/spread_estimator.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {

/// \brief Set-function objective evaluated by Monte Carlo. Both greedy
/// variants and CELF/CELF++ hill-climb one of these.
class McObjective {
 public:
  virtual ~McObjective() = default;
  virtual std::string name() const = 0;
  /// Expected objective value of the seed set (sigma or sigma_o_lambda).
  virtual double Evaluate(const std::vector<NodeId>& seeds) = 0;
};

/// Opinion-oblivious expected spread sigma(S) (IM objective).
class SpreadObjective : public McObjective {
 public:
  SpreadObjective(const Graph& graph, const InfluenceParams& params,
                  const McOptions& options);
  std::string name() const override { return "sigma"; }
  double Evaluate(const std::vector<NodeId>& seeds) override;

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  McOptions options_;
};

/// Opinion-aware expected effective opinion spread sigma_o_lambda(S)
/// (MEO objective; Modified-GREEDY in the paper's Appendix A).
class EffectiveOpinionObjective : public McObjective {
 public:
  EffectiveOpinionObjective(const Graph& graph,
                            const InfluenceParams& influence,
                            const OpinionParams& opinions, OiBase base,
                            double lambda, const McOptions& options);
  std::string name() const override { return "sigma_o"; }
  double Evaluate(const std::vector<NodeId>& seeds) override;

 private:
  const Graph& graph_;
  const InfluenceParams& influence_;
  const OpinionParams& opinions_;
  OiBase base_;
  double lambda_;
  McOptions options_;
};

/// \brief Kempe et al.'s GREEDY: k rounds, each evaluating the marginal gain
/// of every remaining node via Monte Carlo. O(k n r (m+n)) — the gold
/// standard for quality, intractable beyond small graphs (paper Sec. 5).
///
/// With an EffectiveOpinionObjective this is exactly the paper's
/// Modified-GREEDY (Appendix A, Algorithm 6).
class GreedySelector : public SeedSelector {
 public:
  GreedySelector(const Graph& graph, std::shared_ptr<McObjective> objective,
                 std::string name = "GREEDY");

  std::string name() const override { return name_; }
  Result<SeedSelection> Select(uint32_t k) override;

 private:
  const Graph& graph_;
  std::shared_ptr<McObjective> objective_;
  std::string name_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_GREEDY_H_

#include "algo/tim_plus.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/memory.h"
#include "util/timer.h"

namespace holim {

double LogNChooseK(uint64_t n, uint64_t k) {
  if (k > n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

TimPlusSelector::TimPlusSelector(const Graph& graph,
                                 const InfluenceParams& params,
                                 const TimPlusOptions& options)
    : graph_(graph), params_(params), options_(options) {}

std::string TimPlusSelector::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "TIM+(eps=%.2g)", options_.epsilon);
  return buf;
}

double TimPlusSelector::EstimateKpt(uint32_t k, Rng& rng) {
  // TIM Algorithm 2: for i = 1 .. log2(n)-1, draw c_i RR sets; if the mean
  // Bernoulli statistic kappa certifies E[width-based spread] > n/2^i, stop.
  const double n = static_cast<double>(graph_.num_nodes());
  const double m = static_cast<double>(graph_.num_edges());
  if (graph_.num_edges() == 0) return 1.0;
  const double log2n = std::log2(std::max(2.0, n));
  // KPT rounds only sample + read widths, never select, so skip the
  // incremental index entirely.
  RrCollection rr(graph_, params_, /*track_widths=*/true,
                  /*build_index=*/false);
  for (uint32_t i = 1; i + 1 < static_cast<uint32_t>(log2n); ++i) {
    const double ci =
        (6.0 * options_.ell * std::log(n) + 6.0 * std::log(log2n)) *
        std::pow(2.0, i);
    const std::size_t need = static_cast<std::size_t>(std::ceil(ci));
    rr.Clear();
    // On deadline expiry mid-generation the collection rolls back; bail —
    // Select inspects the (sticky) deadline state and degrades.
    if (!rr.GenerateParallel(need, rng.Next64(), options_.pool, deadline_)
             .ok()) {
      return 1.0;
    }
    // kappa(R) = 1 - (1 - w(R)/m)^k per set; estimate the mean.
    double sum = 0.0;
    for (std::size_t s = 0; s < rr.num_sets(); ++s) {
      const double frac = static_cast<double>(rr.set_width(s)) / m;
      sum += 1.0 - std::pow(1.0 - frac, static_cast<double>(k));
    }
    const double mean = sum / static_cast<double>(rr.num_sets());
    if (mean > 1.0 / std::pow(2.0, i)) {
      return n * mean / 2.0;  // KPT* = n * kappa / 2
    }
  }
  return 1.0;
}

double TimPlusSelector::RefineKpt(uint32_t k, double kpt_star, Rng& rng) {
  // TIM Algorithm 3 (intermediate step of TIM+): run greedy on a small
  // sample, then re-estimate the picked set's coverage on a fresh sample to
  // obtain an unbiased lower bound KPT'; KPT+ = max(KPT*, KPT').
  const double n = static_cast<double>(graph_.num_nodes());
  const double eps_prime = 5.0 * std::cbrt(options_.ell * options_.epsilon *
                                           options_.epsilon /
                                           (options_.ell + k));
  const double lambda_prime =
      (2.0 + eps_prime) * options_.ell * n * std::log(n) /
      (eps_prime * eps_prime * std::max(1.0, kpt_star));
  std::size_t theta_prime = static_cast<std::size_t>(std::ceil(lambda_prime));
  if (options_.max_theta > 0) {
    theta_prime = std::min(theta_prime, options_.max_theta);
  }
  RrCollection sample(graph_, params_);
  if (!sample.GenerateParallel(theta_prime, rng.Next64(), options_.pool,
                               deadline_)
           .ok()) {
    return kpt_star;  // expired: Select degrades from the sticky deadline
  }
  auto coverage = sample.Snapshot().SelectMaxCoverage(k);

  // Only CoveredFraction (an arena scan) runs on the fresh sample; no index.
  RrCollection fresh(graph_, params_, /*track_widths=*/false,
                     /*build_index=*/false);
  if (!fresh.GenerateParallel(theta_prime, rng.Next64(), options_.pool,
                              deadline_)
           .ok()) {
    return kpt_star;
  }
  const double f = fresh.CoveredFraction(coverage.seeds);
  const double kpt_refined = f * n / (1.0 + eps_prime);
  return std::max(kpt_star, kpt_refined);
}

Result<SeedSelection> TimPlusSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  Rng rng(options_.seed);
  stats_ = RunStats{};

  // Expiry inside any generation phase is sticky on the deadline; a
  // degraded TIM+ run returns an empty selection (there is no valid seed
  // prefix until the final max-coverage pass) and lets the engine fall to
  // its heuristic tier.
  auto degrade = [&]() -> Result<SeedSelection> {
    selection.seeds.clear();
    selection.seed_scores.clear();
    selection.degraded = true;
    selection.stop_status = deadline_->status();
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  };

  stats_.kpt_star = EstimateKpt(k, rng);
  if (deadline_ && !deadline_->status().ok()) return degrade();
  stats_.kpt_plus = RefineKpt(k, stats_.kpt_star, rng);
  if (deadline_ && !deadline_->status().ok()) return degrade();

  // theta = lambda / KPT+ with lambda = (8+2eps) n (l log n + log C(n,k) +
  // log 2) / eps^2 (TIM Theorem 1).
  const double n = static_cast<double>(graph_.num_nodes());
  const double eps = options_.epsilon;
  const double lambda =
      (8.0 + 2.0 * eps) * n *
      (options_.ell * std::log(n) + LogNChooseK(graph_.num_nodes(), k) +
       std::log(2.0)) /
      (eps * eps);
  std::size_t theta = static_cast<std::size_t>(
      std::ceil(lambda / std::max(1.0, stats_.kpt_plus)));
  if (options_.max_theta > 0 && theta > options_.max_theta) {
    theta = options_.max_theta;
    stats_.theta_capped = true;
  }
  stats_.theta = theta;

  RrCollection rr(graph_, params_);
  if (!rr.GenerateParallel(theta, rng.Next64(), options_.pool, deadline_)
           .ok()) {
    return degrade();
  }
  stats_.rr_memory_bytes = rr.MemoryBytes();
  stats_.rr_index_bytes = rr.IndexMemoryBytes();
  auto coverage = rr.Snapshot().SelectMaxCoverage(k, deadline_);
  selection.seeds = std::move(coverage.seeds);
  if (coverage.deadline_hit) {
    // The committed prefix is valid greedy max-coverage output.
    selection.degraded = true;
    selection.stop_status = deadline_->status();
  }

  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

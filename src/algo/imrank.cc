#include "algo/imrank.h"

#include <algorithm>
#include <numeric>

#include "util/memory.h"
#include "util/timer.h"

namespace holim {

ImRankSelector::ImRankSelector(const Graph& graph,
                               const InfluenceParams& params,
                               const ImRankOptions& options)
    : graph_(graph), params_(params), options_(options) {}

std::vector<double> ImRankSelector::LastToFirstAllocation(
    const std::vector<double>& scores) const {
  const NodeId n = graph_.num_nodes();
  // Rank positions: order[0] = best node. rank_of[u] = position of u.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return scores[a] > scores[b];
  });
  std::vector<uint32_t> rank_of(n);
  for (uint32_t pos = 0; pos < n; ++pos) rank_of[order[pos]] = pos;

  // Everyone starts with one unit of own influence mass.
  std::vector<double> mass(n, 1.0);
  // Visit from lowest rank to highest: each node u hands a p(v,u) share of
  // its remaining mass to its best-ranked in-neighbor v that outranks it
  // (that v would have activated u first under a greedy selection), keeping
  // the residual for itself.
  for (uint32_t pos = n; pos-- > 1;) {
    const NodeId u = order[pos];
    auto in_neighbors = graph_.InNeighbors(u);
    auto in_edges = graph_.InEdgeIds(u);
    // Allocate to higher-ranked in-neighbors in their rank order: the
    // highest-ranked one claims its share first from the remaining mass.
    // Collect candidates (v outranks u), sorted by rank.
    std::vector<std::pair<uint32_t, std::size_t>> claimants;
    for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
      const NodeId v = in_neighbors[i];
      if (rank_of[v] < pos) claimants.emplace_back(rank_of[v], i);
    }
    std::sort(claimants.begin(), claimants.end());
    double remaining = mass[u];
    for (const auto& [vrank, idx] : claimants) {
      const NodeId v = in_neighbors[idx];
      const double share = remaining * params_.p(in_edges[idx]);
      mass[v] += share;
      remaining -= share;
      if (remaining <= 0) break;
    }
    mass[u] = remaining;
  }
  return mass;
}

Result<SeedSelection> ImRankSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  const NodeId n = graph_.num_nodes();

  // Initial ranking: out-degree weighted by mean edge probability.
  std::vector<double> scores(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId base = graph_.OutEdgeBegin(u);
    for (uint32_t i = 0; i < graph_.OutDegree(u); ++i) {
      scores[u] += params_.p(base + i);
    }
  }

  last_iterations_ = 0;
  std::vector<NodeId> previous_top;
  for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
    ++last_iterations_;
    scores = LastToFirstAllocation(scores);
    // Converged when the top-k set stabilizes.
    std::vector<NodeId> top(n);
    std::iota(top.begin(), top.end(), 0);
    std::partial_sort(top.begin(), top.begin() + k, top.end(),
                      [&](NodeId a, NodeId b) { return scores[a] > scores[b]; });
    top.resize(k);
    std::sort(top.begin(), top.end());
    if (top == previous_top) break;
    previous_top = std::move(top);
  }

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) { return scores[a] > scores[b]; });
  selection.seeds.assign(order.begin(), order.begin() + k);
  for (NodeId s : selection.seeds) selection.seed_scores.push_back(scores[s]);
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

#ifndef HOLIM_ALGO_CELF_H_
#define HOLIM_ALGO_CELF_H_

#include <cstdint>
#include <memory>
#include <string>

#include "algo/greedy.h"
#include "algo/seed_selector.h"
#include "graph/graph.h"

namespace holim {

/// \brief CELF / CELF++ (Goyal et al., WWW'11): lazy-forward greedy.
///
/// Exploits submodularity: a node's marginal gain can only shrink as the
/// seed set grows, so stale gains in a max-heap are upper bounds and most
/// re-evaluations are skipped. The CELF++ refinement additionally caches,
/// for each heap entry, the marginal gain w.r.t. (S + previous best) so
/// that when the previous best is in fact selected the entry needs no
/// re-evaluation at all (paper Appendix C).
///
/// With a non-submodular objective (the MEO objective) the lazy bound is a
/// heuristic rather than exact — matching how the paper deploys greedy
/// baselines in the opinion-aware setting.
///
/// When the objective supports an incremental session (McObjective's
/// session API; SketchSpreadObjective), Select runs the same lazy loop
/// through SessionMarginalGain/SessionCommit: gains on the frozen
/// snapshot sample are exactly submodular, ties break toward the smaller
/// node id, and the CELF++ double-gain cache is skipped (a session
/// re-evaluation is already near-O(touched)). The Monte-Carlo path is
/// byte-identical to its pre-session behavior.
class CelfSelector : public SeedSelector {
 public:
  /// `plus_plus` toggles the CELF++ double-gain optimization.
  CelfSelector(const Graph& graph, std::shared_ptr<McObjective> objective,
               bool plus_plus = true, std::string name = "CELF++");

  std::string name() const override { return name_; }
  Result<SeedSelection> Select(uint32_t k) override;

  /// Budgeted lazy greedy (QueryKind::kBudgeted): the CELF loop keyed on
  /// the benefit-per-cost ratio gain(u)/cost(u), with the classic
  /// drop-when-over-budget heap discipline — a popped candidate whose cost
  /// exceeds the residual budget is discarded permanently (its gain only
  /// shrinks while its cost is fixed, so it can never fit later). Ties
  /// break toward the smaller node id, and with uniform unit costs and
  /// budget == k the ratio IS the gain, the drop rule never fires before
  /// the budget is spent, and the selection is bitwise-identical to
  /// Select(k) on the session path. The CELF++ double-gain cache is
  /// skipped in both paths (stale ratios re-evaluate like plain CELF).
  Result<SeedSelection> SelectBudgeted(uint32_t max_seeds,
                                       std::span<const double> costs,
                                       double budget) override;

  /// Number of objective evaluations performed by the last Select call
  /// (exposed so tests can verify laziness actually skips work).
  uint64_t last_evaluation_count() const { return evaluations_; }

 private:
  const Graph& graph_;
  std::shared_ptr<McObjective> objective_;
  bool plus_plus_;
  std::string name_;
  uint64_t evaluations_ = 0;
};

}  // namespace holim

#endif  // HOLIM_ALGO_CELF_H_

#ifndef HOLIM_ALGO_SCORE_GREEDY_H_
#define HOLIM_ALGO_SCORE_GREEDY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/easyim.h"
#include "algo/osim.h"
#include "algo/seed_selector.h"
#include "diffusion/cascade.h"
#include "diffusion/oi_model.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "model/opinion_params.h"

namespace holim {

/// How ScoreGREEDY updates the activated set V(a) after each seed pick
/// (Algorithm 1 line 11 leaves the estimator open — see DESIGN.md).
enum class ActivationStrategy {
  /// V(a) = S: only seeds are removed in later iterations.
  kSeedsOnly,
  /// Run `mc_rounds` simulations from the new seed (previously-activated
  /// nodes blocked); nodes activated in >= `majority_fraction` of rounds
  /// join V(a). Default strategy.
  kMonteCarloMajority,
  /// Deterministic probability propagation up to l hops; nodes whose
  /// activation probability estimate >= `majority_fraction` join V(a).
  kExpectedReach,
};

const char* ActivationStrategyName(ActivationStrategy strategy);

/// Tuning knobs for the ScoreGREEDY driver.
struct ScoreGreedyOptions {
  ActivationStrategy activation = ActivationStrategy::kMonteCarloMajority;
  uint32_t mc_rounds = 20;
  double majority_fraction = 0.5;
  uint64_t seed = 7;
  /// Use the scorer's dirty-frontier incremental rescore between rounds
  /// instead of a full O(l(m+n)) recompute. Bitwise-identical seed sets
  /// either way (the full recompute stays available as the oracle path).
  /// Off by default so the paper's O(n)-space contract — and the memory
  /// figures that reproduce it — hold unless explicitly traded away;
  /// holim_cli defaults its --rescore flag to incremental, the
  /// time-figure benches to full (paper methodology).
  bool incremental_rescore = false;
  /// Hub-aware fallback for the incremental rescore: when a dirty frontier
  /// exceeds this fraction of n, the scorer abandons frontier bookkeeping
  /// for one full leveled rebuild (scores stay bitwise identical; see
  /// ScoreSweepEngine::set_incremental_fallback_fraction). Excluding a hub
  /// on a scale-free graph dirties most of the graph, where the
  /// incremental pass used to run ~1-1.9x SLOWER than a plain full sweep.
  /// >= 1 disables the fallback. Ignored without incremental_rescore.
  double rescore_fallback_fraction = 0.25;
  /// Pool for the sweep kernel's fixed-block sharding; nullptr runs the
  /// sweeps serially. Scores are bitwise-identical for any pool size.
  ThreadPool* pool = nullptr;
};

/// \brief ScoreGREEDY (paper Algorithm 1): repeatedly assign scores to all
/// nodes of G(V \ V(a)), pick the arg-max as the next seed, then grow V(a)
/// with the nodes the new seed activates.
///
/// The score assigner is pluggable: EaSyIM for the opinion-oblivious IM
/// problem, OSIM for MEO. Both drivers below share this implementation.
class ScoreGreedy {
 public:
  using ScoreFn =
      std::function<void(const EpochSet& excluded, std::vector<double>*)>;

  /// Incremental-aware score assigner: `newly_excluded` lists exactly the
  /// nodes added to `excluded` since the assigner's previous invocation;
  /// nullptr means the delta is unknown (first round, or the driver scored
  /// an unrelated set in between) and a full recompute is required.
  using IncrementalScoreFn =
      std::function<void(const EpochSet& excluded,
                         const std::vector<NodeId>* newly_excluded,
                         std::vector<double>*)>;

  ScoreGreedy(const Graph& graph, IncrementalScoreFn score_fn,
              const ScoreGreedyOptions& options);
  /// Legacy assigners ignore the delta and always recompute in full.
  ScoreGreedy(const Graph& graph, ScoreFn score_fn,
              const ScoreGreedyOptions& options);

  /// Hook used by the activation strategies: simulate one cascade from
  /// `seed` with `blocked` nodes removed and report the activated nodes.
  using SimulateFn = std::function<void(NodeId seed, const EpochSet& blocked,
                                        Rng& rng, std::vector<NodeId>* out)>;
  void set_simulate_fn(SimulateFn fn) { simulate_fn_ = std::move(fn); }

  /// Hook for kExpectedReach: edge probability accessor.
  void set_edge_probability(const std::vector<double>* p) { edge_prob_ = p; }
  void set_max_hops(uint32_t hops) { max_hops_ = hops; }

  /// Cooperative deadline checked at each round boundary (borrowed, may be
  /// null). On expiry Select returns the degraded seed prefix.
  void set_deadline(Deadline* deadline) { deadline_ = deadline; }

  Result<SeedSelection> Select(uint32_t k);

 private:
  void GrowActivatedSet(NodeId new_seed);
  void ExpectedReach(NodeId seed, std::vector<NodeId>* out);
  /// All V(a) growth funnels through here so the newly-excluded delta
  /// handed to the incremental assigner stays exact.
  void InsertActivated(NodeId u);

  const Graph& graph_;
  IncrementalScoreFn score_fn_;
  ScoreGreedyOptions options_;
  SimulateFn simulate_fn_;
  const std::vector<double>* edge_prob_ = nullptr;
  Deadline* deadline_ = nullptr;
  uint32_t max_hops_ = 3;
  EpochSet activated_;
  /// Nodes inserted into activated_ since the last main scoring call.
  std::vector<NodeId> newly_activated_;
  Rng rng_;
};

/// EaSyIM bound to ScoreGREEDY: the paper's scalable opinion-oblivious IM
/// algorithm. Works for IC/WC (direct) and LT (weights as probabilities via
/// the live-edge equivalence, Sec. 3.3).
class EasyImSelector : public SeedSelector {
 public:
  EasyImSelector(const Graph& graph, const InfluenceParams& params, uint32_t l,
                 const ScoreGreedyOptions& options = {});

  std::string name() const override;
  Result<SeedSelection> Select(uint32_t k) override;
  /// The scorer's retained sweep scratch (rolling buffers + incremental
  /// level table), capacity-based.
  std::size_t MemoryFootprintBytes() const override {
    return scorer_.ScratchBytes();
  }

  /// The underlying scorer (persistent across Select calls), exposing the
  /// sweep kernel's work/memory stats.
  EasyImScorer& scorer() { return scorer_; }

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  EasyImScorer scorer_;
  ScoreGreedyOptions options_;
};

/// OSIM bound to ScoreGREEDY: the paper's MEO algorithm.
class OsimSelector : public SeedSelector {
 public:
  OsimSelector(const Graph& graph, const InfluenceParams& influence,
               const OpinionParams& opinions, OiBase base, uint32_t l,
               const ScoreGreedyOptions& options = {});

  std::string name() const override;
  Result<SeedSelection> Select(uint32_t k) override;
  std::size_t MemoryFootprintBytes() const override {
    return scorer_.ScratchBytes();
  }

  /// The underlying scorer (persistent across Select calls).
  OsimScorer& scorer() { return scorer_; }

 private:
  const Graph& graph_;
  const InfluenceParams& influence_;
  const OpinionParams& opinions_;
  OiBase base_;
  OsimScorer scorer_;
  ScoreGreedyOptions options_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_SCORE_GREEDY_H_

#include "algo/celf.h"

#include <limits>
#include <queue>
#include <vector>

#include "util/memory.h"
#include "util/timer.h"

namespace holim {

namespace {

struct HeapEntry {
  NodeId node;
  double gain;           // marginal gain w.r.t. S at round `round`
  uint32_t round;        // seed-set size when `gain` was computed
  // CELF++ extras: gain w.r.t. S + prev_best, and which best it refers to.
  double gain_after_prev_best = 0.0;
  NodeId prev_best = kInvalidNode;

  bool operator<(const HeapEntry& other) const {
    return gain < other.gain;  // max-heap by gain
  }
};

// Heap entry of the incremental-session path. Unlike the MC path (whose
// unspecified tie order is part of its frozen byte-identical behavior),
// ties break toward the smaller node id so that session CELF provably
// picks the same seeds as eager greedy over the same frozen snapshots
// (gains there are exactly submodular, so equal-gain candidates are
// interchangeable except for this ordering).
struct SessionHeapEntry {
  NodeId node;
  double gain;
  uint32_t round;

  bool operator<(const SessionHeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;  // smaller id pops first on ties
  }
};

}  // namespace

CelfSelector::CelfSelector(const Graph& graph,
                           std::shared_ptr<McObjective> objective,
                           bool plus_plus, std::string name)
    : graph_(graph),
      objective_(std::move(objective)),
      plus_plus_(plus_plus),
      name_(std::move(name)) {}

Result<SeedSelection> CelfSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  evaluations_ = 0;

  if (objective_->StartSession()) {
    // Incremental path (sketch-backed objectives): the same lazy-forward
    // loop, but every marginal gain is an incremental session probe and
    // selecting a seed commits its frontier once. The CELF++ double-gain
    // cache is pointless here — a session re-evaluation costs no more
    // than the cache lookup's bookkeeping — so `plus_plus_` is ignored.
    std::priority_queue<SessionHeapEntry> heap;
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      ++evaluations_;
      heap.push({u, objective_->SessionMarginalGain(u), 0});
    }
    while (selection.seeds.size() < k && !heap.empty()) {
      SessionHeapEntry top = heap.top();
      heap.pop();
      const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
      if (top.round == round) {
        objective_->SessionCommit(top.node);
        selection.seeds.push_back(top.node);
        selection.seed_scores.push_back(top.gain);
        continue;
      }
      ++evaluations_;
      top.gain = objective_->SessionMarginalGain(top.node);
      top.round = round;
      heap.push(top);
    }
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }

  std::vector<NodeId> trial;
  auto evaluate = [&](const std::vector<NodeId>& seeds) {
    ++evaluations_;
    return objective_->Evaluate(seeds);
  };

  // Initial pass: marginal gain of every singleton.
  std::priority_queue<HeapEntry> heap;
  trial.assign(1, 0);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    trial[0] = u;
    HeapEntry entry;
    entry.node = u;
    entry.gain = evaluate(trial);
    entry.round = 0;
    heap.push(entry);
  }

  double current_value = 0.0;
  while (selection.seeds.size() < k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
    if (top.round == round) {
      // Gain is fresh w.r.t. the current seed set: select it.
      selection.seeds.push_back(top.node);
      selection.seed_scores.push_back(top.gain);
      current_value += top.gain;
      continue;
    }
    if (plus_plus_ && top.prev_best != kInvalidNode &&
        !selection.seeds.empty() && selection.seeds.back() == top.prev_best &&
        top.round + 1 == round) {
      // CELF++: the cached gain w.r.t. S + prev_best is exactly the gain
      // w.r.t. the new S — no re-evaluation needed.
      top.gain = top.gain_after_prev_best;
      top.round = round;
      top.prev_best = kInvalidNode;
      heap.push(top);
      continue;
    }
    // Re-evaluate marginal gain w.r.t. the current seed set.
    trial = selection.seeds;
    trial.push_back(top.node);
    const double value = evaluate(trial);
    top.gain = value - current_value;
    top.round = round;
    if (plus_plus_ && !heap.empty()) {
      // Cache the gain w.r.t. S + current heap best (the likely next pick).
      const NodeId likely_best = heap.top().node;
      if (likely_best != top.node) {
        std::vector<NodeId> trial2 = selection.seeds;
        trial2.push_back(likely_best);
        const double base2 = evaluate(trial2);
        trial2.push_back(top.node);
        const double with_both = evaluate(trial2);
        top.gain_after_prev_best = with_both - base2;
        top.prev_best = likely_best;
      }
    }
    heap.push(top);
  }

  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

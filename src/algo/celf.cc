#include "algo/celf.h"

#include <limits>
#include <queue>
#include <vector>

#include "util/memory.h"
#include "util/timer.h"

namespace holim {

namespace {

struct HeapEntry {
  NodeId node;
  double gain;           // marginal gain w.r.t. S at round `round`
  uint32_t round;        // seed-set size when `gain` was computed
  // CELF++ extras: gain w.r.t. S + prev_best, and which best it refers to.
  double gain_after_prev_best = 0.0;
  NodeId prev_best = kInvalidNode;

  bool operator<(const HeapEntry& other) const {
    return gain < other.gain;  // max-heap by gain
  }
};

// Heap entry of the incremental-session path. Unlike the MC path (whose
// unspecified tie order is part of its frozen byte-identical behavior),
// ties break toward the smaller node id so that session CELF provably
// picks the same seeds as eager greedy over the same frozen snapshots
// (gains there are exactly submodular, so equal-gain candidates are
// interchangeable except for this ordering).
struct SessionHeapEntry {
  NodeId node;
  double gain;
  uint32_t round;

  bool operator<(const SessionHeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;  // smaller id pops first on ties
  }
};

// Heap entry of the budgeted (benefit-per-cost) loop: ordered by ratio
// with the session path's smaller-id tie-break, so with unit costs the
// ratio equals the gain bitwise and the pop sequence reproduces the
// session Select heap exactly.
struct BudgetHeapEntry {
  NodeId node;
  double ratio;   // gain / cost at round `round`
  double gain;    // marginal gain backing the ratio (reported as score)
  uint32_t round;

  bool operator<(const BudgetHeapEntry& other) const {
    if (ratio != other.ratio) return ratio < other.ratio;
    return node > other.node;  // smaller id pops first on ties
  }
};

}  // namespace

CelfSelector::CelfSelector(const Graph& graph,
                           std::shared_ptr<McObjective> objective,
                           bool plus_plus, std::string name)
    : graph_(graph),
      objective_(std::move(objective)),
      plus_plus_(plus_plus),
      name_(std::move(name)) {}

Result<SeedSelection> CelfSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  evaluations_ = 0;

  if (objective_->StartSession()) {
    // Incremental path (sketch-backed objectives): the same lazy-forward
    // loop, but every marginal gain is an incremental session probe and
    // selecting a seed commits its frontier once. The CELF++ double-gain
    // cache is pointless here — a session re-evaluation costs no more
    // than the cache lookup's bookkeeping — so `plus_plus_` is ignored.
    if (deadline_ && !deadline_->Check().ok()) {
      selection.degraded = true;
      selection.stop_status = deadline_->status();
      selection.elapsed_seconds = timer.ElapsedSeconds();
      selection.overhead_bytes = meter.OverheadBytes();
      return selection;
    }
    std::priority_queue<SessionHeapEntry> heap;
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      ++evaluations_;
      heap.push({u, objective_->SessionMarginalGain(u), 0});
    }
    uint32_t checked_round = 0;  // the pre-pass check covers round 0
    while (selection.seeds.size() < k && !heap.empty()) {
      const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
      if (deadline_ && round != checked_round) {
        checked_round = round;
        if (!deadline_->Check().ok()) {
          selection.degraded = true;
          selection.stop_status = deadline_->status();
          break;
        }
      }
      SessionHeapEntry top = heap.top();
      heap.pop();
      if (top.round == round) {
        objective_->SessionCommit(top.node);
        selection.seeds.push_back(top.node);
        selection.seed_scores.push_back(top.gain);
        continue;
      }
      ++evaluations_;
      top.gain = objective_->SessionMarginalGain(top.node);
      top.round = round;
      heap.push(top);
    }
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }

  std::vector<NodeId> trial;
  auto evaluate = [&](const std::vector<NodeId>& seeds) {
    ++evaluations_;
    return objective_->Evaluate(seeds);
  };

  // Initial pass: marginal gain of every singleton.
  if (deadline_ && !deadline_->Check().ok()) {
    selection.degraded = true;
    selection.stop_status = deadline_->status();
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }
  std::priority_queue<HeapEntry> heap;
  trial.assign(1, 0);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    trial[0] = u;
    HeapEntry entry;
    entry.node = u;
    entry.gain = evaluate(trial);
    entry.round = 0;
    heap.push(entry);
  }

  double current_value = 0.0;
  uint32_t checked_round = 0;  // the pre-pass check covers round 0
  while (selection.seeds.size() < k && !heap.empty()) {
    const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
    if (deadline_ && round != checked_round) {
      checked_round = round;
      if (!deadline_->Check().ok()) {
        selection.degraded = true;
        selection.stop_status = deadline_->status();
        break;
      }
    }
    if (deadline_ && deadline_->StopRequested()) {
      // Expiry mid-round (wall clock or cancellation): gains evaluated
      // after it rest on partial MC block sums, so stop before one of
      // them can reach the commit branch. Never reached in work-budget
      // mode (expiry only lands at the per-round Check above).
      selection.degraded = true;
      selection.stop_status = deadline_->Check();
      break;
    }
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round == round) {
      // Gain is fresh w.r.t. the current seed set: select it.
      selection.seeds.push_back(top.node);
      selection.seed_scores.push_back(top.gain);
      current_value += top.gain;
      continue;
    }
    if (plus_plus_ && top.prev_best != kInvalidNode &&
        !selection.seeds.empty() && selection.seeds.back() == top.prev_best &&
        top.round + 1 == round) {
      // CELF++: the cached gain w.r.t. S + prev_best is exactly the gain
      // w.r.t. the new S — no re-evaluation needed.
      top.gain = top.gain_after_prev_best;
      top.round = round;
      top.prev_best = kInvalidNode;
      heap.push(top);
      continue;
    }
    // Re-evaluate marginal gain w.r.t. the current seed set.
    trial = selection.seeds;
    trial.push_back(top.node);
    const double value = evaluate(trial);
    top.gain = value - current_value;
    top.round = round;
    if (plus_plus_ && !heap.empty()) {
      // Cache the gain w.r.t. S + current heap best (the likely next pick).
      const NodeId likely_best = heap.top().node;
      if (likely_best != top.node) {
        std::vector<NodeId> trial2 = selection.seeds;
        trial2.push_back(likely_best);
        const double base2 = evaluate(trial2);
        trial2.push_back(top.node);
        const double with_both = evaluate(trial2);
        top.gain_after_prev_best = with_both - base2;
        top.prev_best = likely_best;
      }
    }
    heap.push(top);
  }

  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

Result<SeedSelection> CelfSelector::SelectBudgeted(
    uint32_t max_seeds, std::span<const double> costs, double budget) {
  if (max_seeds == 0) return Status::InvalidArgument("max_seeds must be positive");
  if (costs.size() != graph_.num_nodes()) {
    return Status::InvalidArgument("cost/node count mismatch");
  }
  if (!(budget > 0.0)) {
    return Status::InvalidArgument("budget must be positive");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  evaluations_ = 0;
  double remaining = budget;

  if (objective_->StartSession()) {
    // Lazy benefit-per-cost loop over session probes. Stale ratios are
    // upper bounds (submodular gains over the frozen snapshots; costs are
    // fixed), so the lazy skip logic carries over from Select unchanged.
    if (deadline_ && !deadline_->Check().ok()) {
      selection.degraded = true;
      selection.stop_status = deadline_->status();
      selection.elapsed_seconds = timer.ElapsedSeconds();
      selection.overhead_bytes = meter.OverheadBytes();
      return selection;
    }
    std::priority_queue<BudgetHeapEntry> heap;
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      ++evaluations_;
      const double gain = objective_->SessionMarginalGain(u);
      heap.push({u, gain / costs[u], gain, 0});
    }
    uint32_t checked_round = 0;  // the pre-pass check covers round 0
    while (selection.seeds.size() < max_seeds && !heap.empty()) {
      const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
      if (deadline_ && round != checked_round) {
        checked_round = round;
        if (!deadline_->Check().ok()) {
          selection.degraded = true;
          selection.stop_status = deadline_->status();
          break;
        }
      }
      BudgetHeapEntry top = heap.top();
      heap.pop();
      if (costs[top.node] > remaining) continue;  // drop: can never fit
      if (top.round == round) {
        objective_->SessionCommit(top.node);
        remaining -= costs[top.node];
        selection.seeds.push_back(top.node);
        selection.seed_scores.push_back(top.gain);
        continue;
      }
      ++evaluations_;
      top.gain = objective_->SessionMarginalGain(top.node);
      top.ratio = top.gain / costs[top.node];
      top.round = round;
      heap.push(top);
    }
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }

  // Monte-Carlo objective: the same lazy ratio loop over whole-set
  // Evaluate calls (no CELF++ double-gain cache — the budgeted pop order
  // depends on costs, so the "likely next best" prediction it rests on
  // doesn't carry over).
  std::vector<NodeId> trial;
  auto evaluate = [&](const std::vector<NodeId>& seeds) {
    ++evaluations_;
    return objective_->Evaluate(seeds);
  };
  if (deadline_ && !deadline_->Check().ok()) {
    selection.degraded = true;
    selection.stop_status = deadline_->status();
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }
  std::priority_queue<BudgetHeapEntry> heap;
  trial.assign(1, 0);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    trial[0] = u;
    const double gain = evaluate(trial);
    heap.push({u, gain / costs[u], gain, 0});
  }
  double current_value = 0.0;
  uint32_t checked_round = 0;  // the pre-pass check covers round 0
  while (selection.seeds.size() < max_seeds && !heap.empty()) {
    const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
    if (deadline_ && round != checked_round) {
      checked_round = round;
      if (!deadline_->Check().ok()) {
        selection.degraded = true;
        selection.stop_status = deadline_->status();
        break;
      }
    }
    if (deadline_ && deadline_->StopRequested()) {
      // Same mid-round discard as Select's MC loop (see above).
      selection.degraded = true;
      selection.stop_status = deadline_->Check();
      break;
    }
    BudgetHeapEntry top = heap.top();
    heap.pop();
    if (costs[top.node] > remaining) continue;  // drop: can never fit
    if (top.round == round) {
      remaining -= costs[top.node];
      selection.seeds.push_back(top.node);
      selection.seed_scores.push_back(top.gain);
      current_value += top.gain;
      continue;
    }
    trial = selection.seeds;
    trial.push_back(top.node);
    top.gain = evaluate(trial) - current_value;
    top.ratio = top.gain / costs[top.node];
    top.round = round;
    heap.push(top);
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

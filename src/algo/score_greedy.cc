#include "algo/score_greedy.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "diffusion/independent_cascade.h"
#include "diffusion/linear_threshold.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/timer.h"

namespace holim {

const char* ActivationStrategyName(ActivationStrategy strategy) {
  switch (strategy) {
    case ActivationStrategy::kSeedsOnly: return "seeds-only";
    case ActivationStrategy::kMonteCarloMajority: return "mc-majority";
    case ActivationStrategy::kExpectedReach: return "expected-reach";
  }
  return "?";
}

ScoreGreedy::ScoreGreedy(const Graph& graph, IncrementalScoreFn score_fn,
                         const ScoreGreedyOptions& options)
    : graph_(graph),
      score_fn_(std::move(score_fn)),
      options_(options),
      activated_(graph.num_nodes()),
      rng_(options.seed) {}

ScoreGreedy::ScoreGreedy(const Graph& graph, ScoreFn score_fn,
                         const ScoreGreedyOptions& options)
    : ScoreGreedy(graph,
                  IncrementalScoreFn([fn = std::move(score_fn)](
                                         const EpochSet& excluded,
                                         const std::vector<NodeId>*,
                                         std::vector<double>* scores) {
                    fn(excluded, scores);
                  }),
                  options) {}

void ScoreGreedy::InsertActivated(NodeId u) {
  if (activated_.Contains(u)) return;
  activated_.Insert(u);
  newly_activated_.push_back(u);
}

void ScoreGreedy::ExpectedReach(NodeId seed, std::vector<NodeId>* out) {
  // Deterministic union-bound propagation of activation probability from
  // `seed`, limited to max_hops_ hops: prob(v) = 1 - prod(1 - prob(u)p(u,v)).
  HOLIM_CHECK(edge_prob_ != nullptr)
      << "kExpectedReach requires set_edge_probability";
  std::vector<double> prob(graph_.num_nodes(), 0.0);
  std::vector<NodeId> frontier = {seed};
  prob[seed] = 1.0;
  std::vector<NodeId> touched = {seed};
  for (uint32_t hop = 0; hop < max_hops_ && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      const EdgeId base = graph_.OutEdgeBegin(u);
      auto neighbors = graph_.OutNeighbors(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const NodeId v = neighbors[i];
        if (activated_.Contains(v)) continue;
        const double contrib = prob[u] * (*edge_prob_)[base + i];
        if (contrib <= 0.0) continue;
        if (prob[v] == 0.0) {
          next.push_back(v);
          touched.push_back(v);
        }
        prob[v] = 1.0 - (1.0 - prob[v]) * (1.0 - contrib);
      }
    }
    frontier = std::move(next);
  }
  for (NodeId v : touched) {
    if (v != seed && prob[v] >= options_.majority_fraction) out->push_back(v);
  }
}

void ScoreGreedy::GrowActivatedSet(NodeId new_seed) {
  // NOTE: the new seed is inserted only after the strategy runs — the MC
  // rounds must be able to activate it as their source.
  switch (options_.activation) {
    case ActivationStrategy::kSeedsOnly:
      InsertActivated(new_seed);
      return;
    case ActivationStrategy::kMonteCarloMajority: {
      HOLIM_CHECK(simulate_fn_ != nullptr)
          << "kMonteCarloMajority requires set_simulate_fn";
      std::vector<uint32_t> hits(graph_.num_nodes(), 0);
      std::vector<NodeId> activated_this_run;
      std::vector<NodeId> candidates;
      for (uint32_t r = 0; r < options_.mc_rounds; ++r) {
        activated_this_run.clear();
        simulate_fn_(new_seed, activated_, rng_, &activated_this_run);
        for (NodeId v : activated_this_run) {
          if (hits[v]++ == 0) candidates.push_back(v);
        }
      }
      const double need = options_.majority_fraction * options_.mc_rounds;
      for (NodeId v : candidates) {
        if (static_cast<double>(hits[v]) >= need) InsertActivated(v);
      }
      InsertActivated(new_seed);
      return;
    }
    case ActivationStrategy::kExpectedReach: {
      std::vector<NodeId> reached;
      ExpectedReach(new_seed, &reached);
      for (NodeId v : reached) InsertActivated(v);
      InsertActivated(new_seed);
      return;
    }
  }
}

Result<SeedSelection> ScoreGreedy::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  activated_.Reset(graph_.num_nodes());
  newly_activated_.clear();
  EpochSet seed_set(graph_.num_nodes());
  seed_set.Reset(graph_.num_nodes());
  std::vector<double> scores;
  // Incremental-delta bookkeeping: the assigner may keep per-level state
  // keyed to the set it last scored. We hand it the exact V(a) delta when
  // this round's set is "last round's set plus newly_activated_"; any other
  // call (first round, or right after the saturation fallback scored
  // seed_set) passes nullptr to force a full recompute.
  bool have_baseline = false;
  bool sequence_broken = false;
  for (uint32_t i = 0; i < k; ++i) {
    if (deadline_ && !deadline_->Check().ok()) {
      selection.degraded = true;
      selection.stop_status = deadline_->status();
      break;
    }
    const std::vector<NodeId>* delta =
        (have_baseline && !sequence_broken) ? &newly_activated_ : nullptr;
    score_fn_(activated_, delta, &scores);
    newly_activated_.clear();
    have_baseline = true;
    sequence_broken = false;
    NodeId best = kInvalidNode;
    double best_score = -std::numeric_limits<double>::infinity();
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (activated_.Contains(u)) continue;
      if (scores[u] > best_score) {
        best_score = scores[u];
        best = u;
      }
    }
    if (best == kInvalidNode) {
      // Every non-seed node is already in V(a): the activation strategy has
      // saturated the graph. Fall back to scoring with only the seeds
      // removed so a full seed set is still returned (the extra seeds have
      // ~zero marginal activation but keep |S| = k, matching Algorithm 1's
      // contract).
      score_fn_(seed_set, nullptr, &scores);
      sequence_broken = true;  // assigner state is now keyed to seed_set
      for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
        if (seed_set.Contains(u)) continue;
        if (scores[u] > best_score) {
          best_score = scores[u];
          best = u;
        }
      }
      if (best == kInvalidNode) break;  // k > n safety; cannot happen here
      selection.seeds.push_back(best);
      selection.seed_scores.push_back(best_score);
      seed_set.Insert(best);
      InsertActivated(best);
      continue;
    }
    selection.seeds.push_back(best);
    selection.seed_scores.push_back(best_score);
    seed_set.Insert(best);
    GrowActivatedSet(best);
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

namespace {

/// Simulation hook for the MC-majority strategy under IC-style dynamics.
ScoreGreedy::SimulateFn MakeIcSimulateFn(const Graph& graph,
                                         const InfluenceParams& params) {
  auto sim = std::make_shared<IcSimulator>(graph, params);
  return [sim](NodeId seed, const EpochSet& blocked, Rng& rng,
               std::vector<NodeId>* out) {
    const NodeId seeds[] = {seed};
    const Cascade& cascade = sim->RunWithBlocked(seeds, rng, blocked);
    for (const Activation& a : cascade.order) out->push_back(a.node);
  };
}

ScoreGreedy::SimulateFn MakeLtSimulateFn(const Graph& graph,
                                         const InfluenceParams& params) {
  auto sim = std::make_shared<LtSimulator>(graph, params);
  return [sim](NodeId seed, const EpochSet& blocked, Rng& rng,
               std::vector<NodeId>* out) {
    const NodeId seeds[] = {seed};
    const Cascade& cascade = sim->RunWithBlocked(seeds, rng, blocked);
    for (const Activation& a : cascade.order) out->push_back(a.node);
  };
}

/// The shared per-round dispatch of EaSyIM/OSIM onto their scorer:
/// incremental rescore when enabled, else the parallel or serial full
/// sweep. One definition so the two selectors cannot diverge.
template <typename Scorer>
ScoreGreedy::IncrementalScoreFn MakeSweepScoreFn(
    Scorer& scorer, const ScoreGreedyOptions& options) {
  return [&scorer, options](const EpochSet& excluded,
                            const std::vector<NodeId>* newly,
                            std::vector<double>* scores) {
    if (options.incremental_rescore) {
      scorer.AssignScoresIncremental(excluded, newly, scores, options.pool);
    } else if (options.pool != nullptr) {
      scorer.AssignScoresParallel(excluded, scores, options.pool);
    } else {
      scorer.AssignScores(excluded, scores);
    }
  };
}

}  // namespace

EasyImSelector::EasyImSelector(const Graph& graph,
                               const InfluenceParams& params, uint32_t l,
                               const ScoreGreedyOptions& options)
    : graph_(graph), params_(params), scorer_(graph, params, l),
      options_(options) {
  scorer_.set_incremental_fallback_fraction(
      options_.rescore_fallback_fraction);
}

std::string EasyImSelector::name() const {
  return "EaSyIM(l=" + std::to_string(scorer_.path_length()) + ")";
}

Result<SeedSelection> EasyImSelector::Select(uint32_t k) {
  ScoreGreedy driver(graph_, MakeSweepScoreFn(scorer_, options_), options_);
  driver.set_deadline(deadline_);
  if (params_.model == DiffusionModel::kLinearThreshold) {
    driver.set_simulate_fn(MakeLtSimulateFn(graph_, params_));
  } else {
    driver.set_simulate_fn(MakeIcSimulateFn(graph_, params_));
  }
  driver.set_edge_probability(&params_.probability);
  driver.set_max_hops(scorer_.path_length());
  auto result = driver.Select(k);
  if (result.ok()) result->scratch_bytes = scorer_.ScratchBytes();
  return result;
}

OsimSelector::OsimSelector(const Graph& graph,
                           const InfluenceParams& influence,
                           const OpinionParams& opinions, OiBase base,
                           uint32_t l, const ScoreGreedyOptions& options)
    : graph_(graph),
      influence_(influence),
      opinions_(opinions),
      base_(base),
      scorer_(graph, influence, opinions, l),
      options_(options) {
  scorer_.set_incremental_fallback_fraction(
      options_.rescore_fallback_fraction);
}

std::string OsimSelector::name() const {
  return "OSIM(l=" + std::to_string(scorer_.path_length()) + ")";
}

Result<SeedSelection> OsimSelector::Select(uint32_t k) {
  ScoreGreedy driver(graph_, MakeSweepScoreFn(scorer_, options_), options_);
  driver.set_deadline(deadline_);
  if (base_ == OiBase::kLinearThreshold) {
    driver.set_simulate_fn(MakeLtSimulateFn(graph_, influence_));
  } else {
    driver.set_simulate_fn(MakeIcSimulateFn(graph_, influence_));
  }
  driver.set_edge_probability(&influence_.probability);
  driver.set_max_hops(scorer_.path_length());
  auto result = driver.Select(k);
  if (result.ok()) result->scratch_bytes = scorer_.ScratchBytes();
  return result;
}

}  // namespace holim

#include "algo/heuristics.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/memory.h"
#include "util/rng.h"
#include "util/timer.h"

namespace holim {

namespace {
Status ValidateK(const Graph& graph, uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  return Status::OK();
}
}  // namespace

Result<SeedSelection> DegreeSelector::Select(uint32_t k) {
  HOLIM_RETURN_NOT_OK(ValidateK(graph_, k));
  SeedSelection selection;
  Timer timer;
  std::vector<NodeId> order(graph_.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) {
                      return graph_.OutDegree(a) > graph_.OutDegree(b);
                    });
  selection.seeds.assign(order.begin(), order.begin() + k);
  for (NodeId s : selection.seeds) {
    selection.seed_scores.push_back(graph_.OutDegree(s));
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

Result<SeedSelection> SingleDiscountSelector::Select(uint32_t k) {
  HOLIM_RETURN_NOT_OK(ValidateK(graph_, k));
  SeedSelection selection;
  Timer timer;
  std::vector<double> score(graph_.num_nodes());
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    score[u] = graph_.OutDegree(u);
  }
  std::vector<char> chosen(graph_.num_nodes(), 0);
  for (uint32_t i = 0; i < k; ++i) {
    NodeId best = kInvalidNode;
    double best_score = -1.0;
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (!chosen[u] && score[u] > best_score) {
        best_score = score[u];
        best = u;
      }
    }
    chosen[best] = 1;
    selection.seeds.push_back(best);
    selection.seed_scores.push_back(best_score);
    // Each out-neighbor of the new seed loses one unit of usable degree.
    for (NodeId v : graph_.OutNeighbors(best)) {
      if (!chosen[v] && score[v] > 0) score[v] -= 1.0;
    }
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

Result<SeedSelection> DegreeDiscountSelector::Select(uint32_t k) {
  HOLIM_RETURN_NOT_OK(ValidateK(graph_, k));
  SeedSelection selection;
  Timer timer;
  const NodeId n = graph_.num_nodes();
  std::vector<double> dd(n);
  std::vector<uint32_t> t(n, 0);  // selected in-neighbors of v
  for (NodeId u = 0; u < n; ++u) dd[u] = graph_.OutDegree(u);
  std::vector<char> chosen(n, 0);
  for (uint32_t i = 0; i < k; ++i) {
    NodeId best = kInvalidNode;
    double best_score = -std::numeric_limits<double>::infinity();
    for (NodeId u = 0; u < n; ++u) {
      if (!chosen[u] && dd[u] > best_score) {
        best_score = dd[u];
        best = u;
      }
    }
    chosen[best] = 1;
    selection.seeds.push_back(best);
    selection.seed_scores.push_back(best_score);
    for (NodeId v : graph_.OutNeighbors(best)) {
      if (chosen[v]) continue;
      ++t[v];
      const double dv = graph_.OutDegree(v);
      dd[v] = dv - 2.0 * t[v] - (dv - t[v]) * t[v] * p_;
    }
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

std::vector<double> PageRankSelector::ComputeRanks() const {
  const NodeId n = graph_.num_nodes();
  std::vector<double> rank(n, 1.0 / n), next(n, 0.0);
  for (uint32_t iter = 0; iter < iterations_; ++iter) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), (1.0 - damping_) / n);
    for (NodeId u = 0; u < n; ++u) {
      // Influence PageRank: rank flows from v to u along edge (u, v)
      // reversed — i.e. a node is important if it points at important
      // spreaders is inverted; here mass flows along in-edges of u's
      // out-neighbors, i.e. standard PR on the transposed graph.
      const uint32_t deg = graph_.InDegree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = damping_ * rank[u] / deg;
      for (NodeId v : graph_.InNeighbors(u)) next[v] += share;
    }
    const double redistribute = damping_ * dangling / n;
    for (NodeId u = 0; u < n; ++u) next[u] += redistribute;
    std::swap(rank, next);
  }
  return rank;
}

Result<SeedSelection> PageRankSelector::Select(uint32_t k) {
  HOLIM_RETURN_NOT_OK(ValidateK(graph_, k));
  SeedSelection selection;
  Timer timer;
  auto rank = ComputeRanks();
  std::vector<NodeId> order(graph_.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) { return rank[a] > rank[b]; });
  selection.seeds.assign(order.begin(), order.begin() + k);
  for (NodeId s : selection.seeds) selection.seed_scores.push_back(rank[s]);
  selection.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

Result<SeedSelection> RandomSelector::Select(uint32_t k) {
  HOLIM_RETURN_NOT_OK(ValidateK(graph_, k));
  SeedSelection selection;
  Timer timer;
  Rng rng(seed_);
  std::vector<char> chosen(graph_.num_nodes(), 0);
  while (selection.seeds.size() < k) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
    if (chosen[u]) continue;
    chosen[u] = 1;
    selection.seeds.push_back(u);
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

}  // namespace holim

#include "algo/easyim.h"

#include <limits>

#include "util/logging.h"

namespace holim {

EasyImScorer::EasyImScorer(const Graph& graph, const InfluenceParams& params,
                           uint32_t l)
    : graph_(graph),
      params_(params),
      l_(l),
      prev_(graph.num_nodes(), 0.0),
      cur_(graph.num_nodes(), 0.0) {
  HOLIM_CHECK(l >= 1) << "path length l must be >= 1";
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
}

namespace {

/// One node's Delta update for a single sweep (shared by the serial and
/// parallel drivers so they stay bitwise identical).
inline double SweepNode(const Graph& graph, const InfluenceParams& params,
                        const EpochSet& excluded,
                        const std::vector<double>& prev, NodeId u) {
  if (excluded.Contains(u)) return 0.0;
  double acc = 0.0;
  const EdgeId base = graph.OutEdgeBegin(u);
  auto neighbors = graph.OutNeighbors(u);
  for (std::size_t j = 0; j < neighbors.size(); ++j) {
    const NodeId v = neighbors[j];
    if (excluded.Contains(v)) continue;
    acc += params.p(base + j) * (1.0 + prev[v]);
  }
  return acc;
}

}  // namespace

void EasyImScorer::AssignScores(const EpochSet& excluded,
                                std::vector<double>* scores) {
  const NodeId n = graph_.num_nodes();
  std::fill(prev_.begin(), prev_.end(), 0.0);
  for (uint32_t i = 1; i <= l_; ++i) {
    for (NodeId u = 0; u < n; ++u) {
      cur_[u] = SweepNode(graph_, params_, excluded, prev_, u);
    }
    std::swap(prev_, cur_);
  }
  scores->assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    (*scores)[u] = excluded.Contains(u)
                       ? -std::numeric_limits<double>::infinity()
                       : prev_[u];
  }
}

void EasyImScorer::AssignScoresParallel(const EpochSet& excluded,
                                        std::vector<double>* scores,
                                        ThreadPool* pool) {
  ThreadPool& workers = pool ? *pool : DefaultThreadPool();
  const NodeId n = graph_.num_nodes();
  std::fill(prev_.begin(), prev_.end(), 0.0);
  for (uint32_t i = 1; i <= l_; ++i) {
    // Each sweep reads prev_ and writes cur_[u] only: race-free sharding.
    workers.ParallelFor(n, [&](std::size_t u) {
      cur_[u] = SweepNode(graph_, params_, excluded, prev_,
                          static_cast<NodeId>(u));
    });
    std::swap(prev_, cur_);
  }
  scores->assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    (*scores)[u] = excluded.Contains(u)
                       ? -std::numeric_limits<double>::infinity()
                       : prev_[u];
  }
}

}  // namespace holim

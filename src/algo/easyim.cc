#include "algo/easyim.h"

#include "util/logging.h"

namespace holim {

EasyImScorer::EasyImScorer(const Graph& graph, const InfluenceParams& params,
                           uint32_t l)
    : engine_(graph, EasyImSweepPolicy(graph, params, l), l) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges())
      << "params/graph edge count mismatch";
}

void EasyImScorer::AssignScores(const EpochSet& excluded,
                                std::vector<double>* scores) {
  engine_.FullSweep(excluded, scores);
}

void EasyImScorer::AssignScoresParallel(const EpochSet& excluded,
                                        std::vector<double>* scores,
                                        ThreadPool* pool) {
  engine_.FullSweep(excluded, scores, pool ? pool : &DefaultThreadPool());
}

void EasyImScorer::AssignScoresIncremental(
    const EpochSet& excluded, const std::vector<NodeId>* newly_excluded,
    std::vector<double>* scores, ThreadPool* pool) {
  engine_.Rescore(excluded, newly_excluded, scores, pool);
}

}  // namespace holim

#ifndef HOLIM_ALGO_ASIM_H_
#define HOLIM_ALGO_ASIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Tuning parameters of ASIM (Galhotra et al., WWW'15 companion) — the
/// authors' earlier path-count heuristic that EaSyIM refines (paper
/// Sec. 3.2: "similar to ASIM [26]").
struct AsimOptions {
  /// Path-length horizon (same role as EaSyIM's l).
  uint32_t l = 3;
  /// Per-hop damping applied to raw path counts. ASIM scores nodes by a
  /// weighted count of length-<=l paths with a geometric weight, rather
  /// than by the product of edge probabilities.
  double damping = 0.1;
};

/// \brief ASIM — score nodes by damped counts of length-<=l walks.
///
/// Recursion: C_i(u) = sum_{v in Out(u)} (1 + C_{i-1}(v)), score(u) =
/// sum_i damping^i * (walks of length i). Equivalent to EaSyIM when all
/// edge probabilities equal `damping`; differs under WC/LT weights, which
/// is exactly the gap EaSyIM closes. Included as the lineage baseline for
/// the ablation benches.
class AsimSelector : public SeedSelector {
 public:
  AsimSelector(const Graph& graph, const InfluenceParams& params,
               const AsimOptions& options = {});

  std::string name() const override;
  Result<SeedSelection> Select(uint32_t k) override;

  /// Exposed for tests: damped walk-count score per node with exclusions.
  void AssignScores(const EpochSet& excluded, std::vector<double>* scores);

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  AsimOptions options_;
  std::vector<double> prev_, cur_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_ASIM_H_

#include "algo/static_greedy.h"

#include <queue>

#include "util/memory.h"
#include "util/rng.h"
#include "util/timer.h"

namespace holim {

StaticGreedySelector::StaticGreedySelector(const Graph& graph,
                                           const InfluenceParams& params,
                                           const StaticGreedyOptions& options)
    : graph_(graph), params_(params), options_(options) {}

std::string StaticGreedySelector::name() const {
  return "StaticGreedy(R=" + std::to_string(options_.num_snapshots) + ")";
}

void StaticGreedySelector::SampleSnapshots() {
  snapshots_.clear();
  snapshots_.reserve(options_.num_snapshots);
  Rng rng(options_.seed);
  const NodeId n = graph_.num_nodes();
  const bool lt = params_.model == DiffusionModel::kLinearThreshold;
  for (uint32_t s = 0; s < options_.num_snapshots; ++s) {
    Snapshot snap;
    snap.offsets.assign(n + 1, 0);
    std::vector<std::pair<NodeId, NodeId>> live;
    if (lt) {
      // Live-edge LT: each node keeps at most one in-edge.
      for (NodeId v = 0; v < n; ++v) {
        auto in_neighbors = graph_.InNeighbors(v);
        auto in_edges = graph_.InEdgeIds(v);
        double r = rng.NextDouble();
        for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
          const double w = params_.p(in_edges[i]);
          if (r < w) {
            live.emplace_back(in_neighbors[i], v);
            break;
          }
          r -= w;
        }
      }
    } else {
      for (NodeId u = 0; u < n; ++u) {
        const EdgeId base = graph_.OutEdgeBegin(u);
        auto neighbors = graph_.OutNeighbors(u);
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          if (rng.NextBernoulli(params_.p(base + i))) {
            live.emplace_back(u, neighbors[i]);
          }
        }
      }
    }
    for (auto [u, v] : live) ++snap.offsets[u + 1];
    for (NodeId u = 0; u < n; ++u) snap.offsets[u + 1] += snap.offsets[u];
    snap.targets.resize(live.size());
    std::vector<EdgeId> cursor(snap.offsets.begin(), snap.offsets.end() - 1);
    for (auto [u, v] : live) snap.targets[cursor[u]++] = v;
    snapshots_.push_back(std::move(snap));
  }
}

double StaticGreedySelector::MarginalGain(
    NodeId u, const std::vector<std::vector<char>>& covered) const {
  // BFS from u in each snapshot counting nodes not yet covered.
  std::size_t gain = 0;
  std::vector<NodeId> stack;
  std::vector<char> seen(graph_.num_nodes(), 0);
  for (std::size_t s = 0; s < snapshots_.size(); ++s) {
    const Snapshot& snap = snapshots_[s];
    std::fill(seen.begin(), seen.end(), 0);
    stack.clear();
    stack.push_back(u);
    seen[u] = 1;
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      if (!covered[s][x]) ++gain;
      for (EdgeId e = snap.offsets[x]; e < snap.offsets[x + 1]; ++e) {
        const NodeId y = snap.targets[e];
        if (!seen[y]) {
          seen[y] = 1;
          stack.push_back(y);
        }
      }
    }
  }
  return static_cast<double>(gain) / snapshots_.size();
}

void StaticGreedySelector::Cover(NodeId u,
                                 std::vector<std::vector<char>>* covered) const {
  std::vector<NodeId> stack;
  for (std::size_t s = 0; s < snapshots_.size(); ++s) {
    const Snapshot& snap = snapshots_[s];
    auto& mask = (*covered)[s];
    stack.clear();
    if (!mask[u]) {
      mask[u] = 1;
      stack.push_back(u);
    }
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      for (EdgeId e = snap.offsets[x]; e < snap.offsets[x + 1]; ++e) {
        const NodeId y = snap.targets[e];
        if (!mask[y]) {
          mask[y] = 1;
          stack.push_back(y);
        }
      }
    }
  }
}

std::size_t StaticGreedySelector::SnapshotBytes() const {
  std::size_t bytes = 0;
  for (const Snapshot& snap : snapshots_) {
    bytes += snap.offsets.capacity() * sizeof(EdgeId) +
             snap.targets.capacity() * sizeof(NodeId);
  }
  return bytes;
}

Result<SeedSelection> StaticGreedySelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  // The sample is a pure function of (graph, params, options), so it is
  // drawn once and kept: re-Select on a cached selector (engine Workspace
  // warm reuse) skips phase 1 while staying bitwise-identical to a cold
  // run.
  if (deadline_ && !deadline_->Check().ok()) {
    selection.degraded = true;
    selection.stop_status = deadline_->status();
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  }
  if (snapshots_.empty()) SampleSnapshots();

  std::vector<std::vector<char>> covered(
      snapshots_.size(), std::vector<char>(graph_.num_nodes(), 0));

  // CELF lazy greedy: gains on a static sample are exactly submodular.
  struct Entry {
    NodeId node;
    double gain;
    uint32_t round;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    heap.push({u, MarginalGain(u, covered), 0});
  }
  uint32_t checked_round = 0;  // the pre-sample check covers round 0
  while (selection.seeds.size() < k && !heap.empty()) {
    const uint32_t round = static_cast<uint32_t>(selection.seeds.size());
    if (deadline_ && round != checked_round) {
      checked_round = round;
      if (!deadline_->Check().ok()) {
        selection.degraded = true;
        selection.stop_status = deadline_->status();
        break;
      }
    }
    Entry top = heap.top();
    heap.pop();
    if (top.round == round) {
      selection.seeds.push_back(top.node);
      selection.seed_scores.push_back(top.gain);
      Cover(top.node, &covered);
      continue;
    }
    top.gain = MarginalGain(top.node, covered);
    top.round = round;
    heap.push(top);
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

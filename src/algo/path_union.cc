#include "algo/path_union.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/memory.h"
#include "util/timer.h"

namespace holim {

namespace {
constexpr NodeId kDenseLimit = 4096;

/// a ∪ b for independent event probabilities.
inline double ProbUnion(double a, double b) { return a + b - a * b; }
}  // namespace

PathUnionScorer::PathUnionScorer(const Graph& graph,
                                 const InfluenceParams& params, uint32_t l)
    : graph_(graph), params_(params), l_(l) {}

Result<std::vector<std::vector<double>>> PathUnionScorer::WalkUnionMatrix()
    const {
  const NodeId n = graph_.num_nodes();
  if (n > kDenseLimit) {
    return Status::OutOfRange("PathUnion is dense; n exceeds " +
                              std::to_string(kDenseLimit));
  }
  // M[u][v] = p(u,v); PU starts as identity (paper line 1).
  std::vector<std::vector<double>> M(n, std::vector<double>(n, 0.0));
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      M[u][neighbors[i]] = params_.p(base + i);
    }
  }
  std::vector<std::vector<double>> pu(n, std::vector<double>(n, 0.0));
  for (NodeId u = 0; u < n; ++u) pu[u][u] = 1.0;

  std::vector<std::vector<double>> next(n, std::vector<double>(n, 0.0));
  for (uint32_t round = 1; round <= l_; ++round) {
    // next = pu ⊗ M with union-combination across intermediates (Eq. 1).
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        double acc = 0.0;
        for (NodeId k = 0; k < n; ++k) {
          const double term = pu[i][k] * M[k][j];
          if (term != 0.0) acc = ProbUnion(acc, term);
        }
        next[i][j] = acc;
      }
    }
    std::swap(pu, next);
    for (NodeId v = 0; v < n; ++v) pu[v][v] = 0.0;  // lines 5-7
  }
  return pu;
}

Result<std::vector<double>> PathUnionScorer::AssignScores() const {
  const NodeId n = graph_.num_nodes();
  if (n > kDenseLimit) {
    return Status::OutOfRange("PathUnion is dense; n exceeds " +
                              std::to_string(kDenseLimit));
  }
  // Delta_i(u) accumulates row sums of PU after each round (line 10). We
  // re-run the iteration to accumulate per-round contributions.
  std::vector<std::vector<double>> M(n, std::vector<double>(n, 0.0));
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      M[u][neighbors[i]] = params_.p(base + i);
    }
  }
  std::vector<std::vector<double>> pu(n, std::vector<double>(n, 0.0));
  for (NodeId u = 0; u < n; ++u) pu[u][u] = 1.0;
  std::vector<double> delta(n, 0.0);
  std::vector<std::vector<double>> next(n, std::vector<double>(n, 0.0));
  for (uint32_t round = 1; round <= l_; ++round) {
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        double acc = 0.0;
        for (NodeId k = 0; k < n; ++k) {
          const double term = pu[i][k] * M[k][j];
          if (term != 0.0) acc = ProbUnion(acc, term);
        }
        next[i][j] = acc;
      }
    }
    std::swap(pu, next);
    for (NodeId v = 0; v < n; ++v) pu[v][v] = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) delta[u] += pu[u][v];
    }
  }
  return delta;
}

Result<SeedSelection> PathUnionSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  HOLIM_ASSIGN_OR_RETURN(std::vector<double> delta, scorer_.AssignScores());
  std::vector<NodeId> order(graph_.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) {
                      if (delta[a] != delta[b]) return delta[a] > delta[b];
                      return a < b;
                    });
  for (uint32_t i = 0; i < k; ++i) {
    selection.seeds.push_back(order[i]);
    selection.seed_scores.push_back(delta[order[i]]);
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

#include "algo/imm.h"

#include <algorithm>
#include <cmath>

#include "algo/tim_plus.h"  // LogNChooseK
#include "util/memory.h"
#include "util/timer.h"

namespace holim {

ImmSelector::ImmSelector(const Graph& graph, const InfluenceParams& params,
                         const ImmOptions& options)
    : graph_(graph), params_(params), options_(options) {}

std::string ImmSelector::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "IMM(eps=%.2g)", options_.epsilon);
  return buf;
}

Result<SeedSelection> ImmSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  Rng rng(options_.seed);
  stats_ = RunStats{};

  const double n = static_cast<double>(graph_.num_nodes());
  const double eps = options_.epsilon;
  const double ell = options_.ell * (1.0 + std::log(2.0) / std::log(n));
  const double log_nck = LogNChooseK(graph_.num_nodes(), k);
  // IMM Sampling phase constants (paper Sec. 3.2).
  const double eps_prime = std::sqrt(2.0) * eps;
  const double alpha = std::sqrt(ell * std::log(n) + std::log(2.0));
  const double beta =
      std::sqrt((1.0 - 1.0 / M_E) * (log_nck + ell * std::log(n) + std::log(2.0)));
  const double lambda_prime =
      (2.0 + 2.0 / 3.0 * eps_prime) *
      (log_nck + ell * std::log(n) + std::log(std::log2(std::max(2.0, n)))) *
      n / (eps_prime * eps_prime);
  const double lambda_star = 2.0 * n *
                             ((1.0 - 1.0 / M_E) * alpha + beta) *
                             ((1.0 - 1.0 / M_E) * alpha + beta) / (eps * eps);

  // As in TIM+: expiry mid-generation leaves no valid seed prefix, so a
  // degraded IMM run returns empty seeds and the engine's heuristic tier
  // takes over. Expiry is sticky on the deadline.
  auto degrade = [&]() -> Result<SeedSelection> {
    selection.seeds.clear();
    selection.seed_scores.clear();
    selection.degraded = true;
    selection.stop_status = deadline_->status();
    selection.elapsed_seconds = timer.ElapsedSeconds();
    selection.overhead_bytes = meter.OverheadBytes();
    return selection;
  };

  RrCollection rr(graph_, params_);
  double lb = 1.0;
  const uint32_t max_rounds =
      static_cast<uint32_t>(std::max(1.0, std::log2(n) - 1.0));
  for (uint32_t i = 1; i <= max_rounds; ++i) {
    const double x = n / std::pow(2.0, i);
    std::size_t theta_i =
        static_cast<std::size_t>(std::ceil(lambda_prime / x));
    if (options_.max_theta > 0) theta_i = std::min(theta_i, options_.max_theta);
    // Draw the round seed unconditionally: RNG consumption per round must
    // not depend on whether this round appended sets (max_theta can cap
    // theta_i at the current size), or seeds downstream would diverge
    // across max_theta settings.
    const uint64_t round_seed = rng.Next64();
    if (rr.num_sets() < theta_i) {
      if (!rr.GenerateParallel(theta_i - rr.num_sets(), round_seed,
                               options_.pool, deadline_)
               .ok()) {
        return degrade();
      }
    }
    // The snapshot CELF runs against the incrementally maintained index, so
    // this round only paid indexing for the sets appended above.
    auto coverage = rr.Snapshot().SelectMaxCoverage(k);
    const double estimate = n * coverage.covered_fraction;
    if (estimate >= (1.0 + eps_prime) * x) {
      lb = estimate / (1.0 + eps_prime);
      break;
    }
    if (options_.max_theta > 0 && rr.num_sets() >= options_.max_theta) break;
  }
  stats_.lower_bound = lb;

  std::size_t theta =
      static_cast<std::size_t>(std::ceil(lambda_star / std::max(1.0, lb)));
  if (options_.max_theta > 0) theta = std::min(theta, options_.max_theta);
  // Hoisted for the same reason as round_seed above: consume one draw on
  // both the generate and the already-enough-sets path.
  const uint64_t final_seed = rng.Next64();
  if (rr.num_sets() < theta) {
    if (!rr.GenerateParallel(theta - rr.num_sets(), final_seed, options_.pool,
                             deadline_)
             .ok()) {
      return degrade();
    }
  }
  stats_.theta = rr.num_sets();
  stats_.rr_memory_bytes = rr.MemoryBytes();
  stats_.rr_index_bytes = rr.IndexMemoryBytes();

  auto coverage = rr.Snapshot().SelectMaxCoverage(k, deadline_);
  selection.seeds = std::move(coverage.seeds);
  if (coverage.deadline_hit) {
    // Committed prefix seeds are valid greedy max-coverage output.
    selection.degraded = true;
    selection.stop_status = deadline_->status();
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

#ifndef HOLIM_ALGO_STATIC_GREEDY_H_
#define HOLIM_ALGO_STATIC_GREEDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Tuning parameters of StaticGreedy (Cheng et al., CIKM'13).
struct StaticGreedyOptions {
  /// Number of live-edge snapshots sampled up front (the paper's R; a few
  /// hundred suffice because the same snapshots are reused every round,
  /// removing the estimate-vs-estimate noise of naive MC greedy).
  uint32_t num_snapshots = 100;
  uint64_t seed = 77;
};

/// \brief StaticGreedy — greedy IM over a fixed set of sampled snapshots.
///
/// Phase 1 samples R live-edge instantiations of the graph once (each edge
/// kept independently w.p. p(e) for IC/WC; single live in-edge for LT).
/// Phase 2 runs CELF-style lazy greedy where a node's gain is the average
/// number of *newly* reachable nodes across snapshots. Because the sample
/// is static, marginal gains are exactly submodular and the lazy heap
/// never misranks — the algorithm's "scalability-accuracy dilemma" fix.
class StaticGreedySelector : public SeedSelector {
 public:
  StaticGreedySelector(const Graph& graph, const InfluenceParams& params,
                       const StaticGreedyOptions& options = {});

  std::string name() const override;
  Result<SeedSelection> Select(uint32_t k) override;

  /// Total memory held by the sampled snapshots (scalability accounting).
  std::size_t SnapshotBytes() const;
  /// The retained snapshot sample (drawn on first Select, reused after).
  std::size_t MemoryFootprintBytes() const override {
    return SnapshotBytes();
  }

 private:
  void SampleSnapshots();
  /// Marginal coverage of `u` given the already-covered node sets.
  double MarginalGain(NodeId u,
                      const std::vector<std::vector<char>>& covered) const;
  void Cover(NodeId u, std::vector<std::vector<char>>* covered) const;

  const Graph& graph_;
  const InfluenceParams& params_;
  StaticGreedyOptions options_;
  /// Per-snapshot live out-adjacency in CSR form.
  struct Snapshot {
    std::vector<EdgeId> offsets;
    std::vector<NodeId> targets;
  };
  std::vector<Snapshot> snapshots_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_STATIC_GREEDY_H_

#include "algo/irie.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/memory.h"
#include "util/timer.h"

namespace holim {

IrieSelector::IrieSelector(const Graph& graph, const InfluenceParams& params,
                           const IrieOptions& options)
    : graph_(graph), params_(params), options_(options) {}

void IrieSelector::ComputeActivationProbability(
    const std::vector<NodeId>& seeds, std::vector<double>* ap) const {
  ap->assign(graph_.num_nodes(), 0.0);
  if (seeds.empty()) return;
  std::vector<NodeId> frontier;
  for (NodeId s : seeds) {
    (*ap)[s] = 1.0;
    frontier.push_back(s);
  }
  // Union-bound propagation over ap_hops hops:
  //   AP(v) = 1 - prod_u (1 - AP(u) p(u,v)).
  for (uint32_t hop = 0; hop < options_.ap_hops && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      const EdgeId base = graph_.OutEdgeBegin(u);
      auto neighbors = graph_.OutNeighbors(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const NodeId v = neighbors[i];
        if ((*ap)[v] >= 1.0) continue;
        const double contrib = (*ap)[u] * params_.p(base + i);
        if (contrib <= 0.0) continue;
        if ((*ap)[v] == 0.0) next.push_back(v);
        (*ap)[v] = 1.0 - (1.0 - (*ap)[v]) * (1.0 - contrib);
      }
    }
    frontier = std::move(next);
  }
}

void IrieSelector::ComputeRanks(const std::vector<double>& ap,
                                std::vector<double>* rank) const {
  const NodeId n = graph_.num_nodes();
  rank->assign(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
    double max_change = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      double acc = 0.0;
      const EdgeId base = graph_.OutEdgeBegin(u);
      auto neighbors = graph_.OutNeighbors(u);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        acc += params_.p(base + i) * (*rank)[neighbors[i]];
      }
      const double updated = (1.0 - ap[u]) * (1.0 + options_.alpha * acc);
      max_change = std::max(max_change, std::abs(updated - (*rank)[u]));
      next[u] = updated;
    }
    std::swap(*rank, next);
    if (max_change < options_.theta) break;
  }
}

Result<SeedSelection> IrieSelector::Select(uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  SeedSelection selection;
  MemoryMeter meter;
  Timer timer;
  std::vector<double> ap, rank;
  std::vector<char> chosen(graph_.num_nodes(), 0);
  for (uint32_t i = 0; i < k; ++i) {
    ComputeActivationProbability(selection.seeds, &ap);
    ComputeRanks(ap, &rank);
    NodeId best = kInvalidNode;
    double best_rank = -std::numeric_limits<double>::infinity();
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (chosen[u]) continue;
      if (rank[u] > best_rank) {
        best_rank = rank[u];
        best = u;
      }
    }
    if (best == kInvalidNode) break;
    chosen[best] = 1;
    selection.seeds.push_back(best);
    selection.seed_scores.push_back(best_rank);
  }
  selection.elapsed_seconds = timer.ElapsedSeconds();
  selection.overhead_bytes = meter.OverheadBytes();
  return selection;
}

}  // namespace holim

#ifndef HOLIM_ALGO_IRIE_H_
#define HOLIM_ALGO_IRIE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Tuning parameters of IRIE (Jung, Heo, Chen, ICDM'12).
struct IrieOptions {
  /// Damping factor of the influence-rank recursion (paper recommends 0.7;
  /// this paper's Sec. 4 uses alpha = 0.7).
  double alpha = 0.7;
  /// Convergence threshold on rank updates (paper Sec. 4 uses 1/320).
  double theta = 1.0 / 320.0;
  uint32_t max_iterations = 20;
  /// Hop bound for the influence-estimation (AP) propagation from seeds.
  uint32_t ap_hops = 2;
};

/// \brief IRIE — Influence Ranking + Influence Estimation heuristic for
/// IC/WC.
///
/// Rank recursion: r(u) = 1 + alpha * sum_{v in Out(u)} p(u,v) r(v),
/// iterated to fixpoint. After each seed pick, AP(u | S) estimates how
/// activated u already is (bounded-hop union-bound propagation from S) and
/// the next rank pass solves r(u) = (1 - AP(u)) (1 + alpha sum p r(v)),
/// discounting nodes the current seeds already reach.
class IrieSelector : public SeedSelector {
 public:
  IrieSelector(const Graph& graph, const InfluenceParams& params,
               const IrieOptions& options = {});

  std::string name() const override { return "IRIE"; }
  Result<SeedSelection> Select(uint32_t k) override;

 private:
  void ComputeActivationProbability(const std::vector<NodeId>& seeds,
                                    std::vector<double>* ap) const;
  void ComputeRanks(const std::vector<double>& ap,
                    std::vector<double>* rank) const;

  const Graph& graph_;
  const InfluenceParams& params_;
  IrieOptions options_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_IRIE_H_

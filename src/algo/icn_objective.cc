#include "algo/icn_objective.h"

#include "util/rng.h"
#include "util/thread_pool.h"

namespace holim {

double EstimateIcnPositiveSpread(const Graph& graph,
                                 const InfluenceParams& params,
                                 double quality_factor,
                                 const std::vector<NodeId>& seeds,
                                 const McOptions& options) {
  if (seeds.empty()) return 0.0;
  ThreadPool& pool = options.pool ? *options.pool : DefaultThreadPool();
  const std::size_t shards =
      std::max<std::size_t>(1, std::min<std::size_t>(pool.num_threads() * 2,
                                                     options.num_simulations));
  std::vector<double> partial(shards, 0.0);
  const uint32_t per = options.num_simulations / shards;
  const uint32_t rem = options.num_simulations % shards;
  pool.ParallelFor(shards, [&](std::size_t s) {
    const uint32_t count = per + (s < rem ? 1 : 0);
    uint64_t state = options.seed + 0x51ED5EEDULL * (s + 1);
    Rng rng(Rng::SplitMix64(state));
    IcnSimulator sim(graph, params, quality_factor);
    double acc = 0.0;
    for (uint32_t i = 0; i < count; ++i) {
      acc += static_cast<double>(sim.Run(seeds, rng).PositiveSpread());
    }
    partial[s] = acc;
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options.num_simulations;
}

IcnPositiveSpreadObjective::IcnPositiveSpreadObjective(
    const Graph& graph, const InfluenceParams& params, double quality_factor,
    const McOptions& options, std::shared_ptr<const SketchOracle> sketch,
    SketchEval eval)
    : graph_(graph),
      params_(params),
      quality_factor_(quality_factor),
      options_(options),
      sketch_(std::move(sketch)),
      eval_(eval) {}

double IcnPositiveSpreadObjective::Evaluate(const std::vector<NodeId>& seeds) {
  if (sketch_) {
    return sketch_->EstimateIcnPositive(seeds, quality_factor_, eval_);
  }
  return EstimateIcnPositiveSpread(graph_, params_, quality_factor_, seeds,
                                   options_);
}

}  // namespace holim

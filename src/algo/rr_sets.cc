#include "algo/rr_sets.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace holim {

RrCollection::RrCollection(const Graph& graph, const InfluenceParams& params,
                           bool track_widths)
    : graph_(graph),
      params_(params),
      track_widths_(track_widths),
      visited_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges());
  offsets_.push_back(0);
}

void RrCollection::Clear() {
  entries_.clear();
  offsets_.assign(1, 0);
  widths_.clear();
  total_width_ = 0;
}

uint64_t RrCollection::SampleOne(Rng& rng, EpochSet& visited,
                                 std::vector<NodeId>& stack,
                                 std::vector<NodeId>& out) const {
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  visited.Reset(graph_.num_nodes());
  stack.clear();
  visited.Insert(root);
  stack.push_back(root);
  out.push_back(root);
  uint64_t width = 0;
  const bool lt = params_.model == DiffusionModel::kLinearThreshold;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    width += graph_.InDegree(v);
    auto in_neighbors = graph_.InNeighbors(v);
    auto in_edges = graph_.InEdgeIds(v);
    if (lt) {
      // Live-edge: v keeps at most one live in-edge, chosen w.p. w(u,v).
      double r = rng.NextDouble();
      for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
        const double w = params_.p(in_edges[i]);
        if (r < w) {
          const NodeId u = in_neighbors[i];
          if (!visited.Contains(u)) {
            visited.Insert(u);
            stack.push_back(u);
            out.push_back(u);
          }
          break;
        }
        r -= w;
      }
    } else {
      for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
        const NodeId u = in_neighbors[i];
        if (visited.Contains(u)) continue;
        if (rng.NextBernoulli(params_.p(in_edges[i]))) {
          visited.Insert(u);
          stack.push_back(u);
          out.push_back(u);
        }
      }
    }
  }
  return width;
}

void RrCollection::Generate(std::size_t count, Rng& rng) {
  offsets_.reserve(offsets_.size() + count);
  if (track_widths_) widths_.reserve(widths_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const uint64_t w = SampleOne(rng, visited_, stack_, entries_);
    offsets_.push_back(entries_.size());
    if (track_widths_) widths_.push_back(w);
    total_width_ += w;
  }
}

void RrCollection::GenerateParallel(std::size_t count, uint64_t seed,
                                    ThreadPool* pool) {
  if (count == 0) return;
  ThreadPool& p = pool ? *pool : DefaultThreadPool();
  const std::size_t num_blocks =
      (count + kGenerateBlockSize - 1) / kGenerateBlockSize;

  // Shards only schedule blocks onto threads; each shard carries reusable
  // scratch and one output buffer, never RNG state — block seeds depend on
  // the global block index alone, so the merged arena does not depend on
  // thread count. Blocks are processed in waves of `shards` and merged
  // after each wave, capping peak transient memory at one wave of buffers
  // instead of a full second copy of the arena.
  const std::size_t shards = std::max<std::size_t>(
      1, std::min<std::size_t>(p.num_threads() * 2, num_blocks));
  struct ShardState {
    EpochSet visited;
    std::vector<NodeId> stack;
    std::vector<NodeId> entries;
    std::vector<uint32_t> sizes;
    std::vector<uint64_t> widths;
  };
  std::vector<ShardState> shard(shards);
  for (auto& s : shard) s.visited.Reset(graph_.num_nodes());

  offsets_.reserve(offsets_.size() + count);
  if (track_widths_) widths_.reserve(widths_.size() + count);
  const std::size_t entries_before = entries_.size();
  std::size_t sets_done = 0;
  for (std::size_t wave_start = 0; wave_start < num_blocks;
       wave_start += shards) {
    const std::size_t wave_blocks =
        std::min(shards, num_blocks - wave_start);
    p.ParallelFor(wave_blocks, [&](std::size_t w) {
      ShardState& sc = shard[w];
      sc.entries.clear();
      sc.sizes.clear();
      sc.widths.clear();
      const std::size_t b = wave_start + w;
      uint64_t state = seed + kGenerateSeedSalt * (b + 1);
      Rng rng(Rng::SplitMix64(state));
      const std::size_t lo = b * kGenerateBlockSize;
      const std::size_t n = std::min(kGenerateBlockSize, count - lo);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t before = sc.entries.size();
        const uint64_t width =
            SampleOne(rng, sc.visited, sc.stack, sc.entries);
        sc.sizes.push_back(
            static_cast<uint32_t>(sc.entries.size() - before));
        sc.widths.push_back(width);
      }
    });
    for (std::size_t w = 0; w < wave_blocks; ++w) {
      const ShardState& sc = shard[w];
      entries_.insert(entries_.end(), sc.entries.begin(), sc.entries.end());
      std::size_t end = offsets_.back();
      for (std::size_t i = 0; i < sc.sizes.size(); ++i) {
        end += sc.sizes[i];
        offsets_.push_back(end);
        if (track_widths_) widths_.push_back(sc.widths[i]);
        total_width_ += sc.widths[i];
      }
      sets_done += sc.sizes.size();
    }
    if (wave_start == 0 && sets_done < count) {
      // Project the final arena size from the first wave's mean set size
      // (+5% slack) so later waves rarely trigger a doubling realloc.
      const std::size_t wave_entries = entries_.size() - entries_before;
      const std::size_t projected =
          entries_before + wave_entries * count / sets_done;
      entries_.reserve(projected + projected / 20);
    }
  }
}

RrCollection::CoverageResult RrCollection::SelectMaxCoverage(uint32_t k) const {
  CoverageResult result;
  const std::size_t num = num_sets();
  if (num == 0) return result;
  // Flat inverted index over the arena: node -> set ids containing it.
  std::vector<uint32_t> degree(graph_.num_nodes(), 0);
  for (NodeId u : entries_) ++degree[u];
  std::vector<std::size_t> index_offsets(graph_.num_nodes() + 1, 0);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    index_offsets[u + 1] = index_offsets[u] + degree[u];
  }
  std::vector<uint32_t> membership(entries_.size());
  std::vector<std::size_t> cursor(index_offsets.begin(),
                                  index_offsets.end() - 1);
  for (std::size_t s = 0; s < num; ++s) {
    for (std::size_t j = offsets_[s]; j < offsets_[s + 1]; ++j) {
      membership[cursor[entries_[j]]++] = static_cast<uint32_t>(s);
    }
  }

  // CELF lazy greedy: heap entries carry a stale upper bound on the node's
  // marginal gain (gains only shrink as sets get covered, so a stale value
  // is always an upper bound). Pop, re-count against the covered bitmap,
  // and select only when the refreshed gain still tops the heap.
  struct Candidate {
    uint32_t gain;
    NodeId node;
    bool operator<(const Candidate& other) const {
      if (gain != other.gain) return gain < other.gain;
      return node > other.node;  // max-heap: prefer the smaller node id
    }
  };
  std::priority_queue<Candidate> heap;
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    if (degree[u] > 0) heap.push({degree[u], u});
  }

  std::vector<char> set_covered(num, 0);
  std::vector<char> selected(graph_.num_nodes(), 0);
  std::size_t covered = 0;
  while (result.seeds.size() < k && !heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (selected[top.node]) continue;
    uint32_t fresh = 0;
    for (std::size_t j = index_offsets[top.node];
         j < index_offsets[top.node + 1]; ++j) {
      if (!set_covered[membership[j]]) ++fresh;
    }
    if (fresh == 0) continue;  // nothing uncovered left under this node
    if (!heap.empty()) {
      const Candidate& next = heap.top();
      if (Candidate{fresh, top.node} < next) {
        heap.push({fresh, top.node});
        continue;
      }
    }
    result.seeds.push_back(top.node);
    selected[top.node] = 1;
    for (std::size_t j = index_offsets[top.node];
         j < index_offsets[top.node + 1]; ++j) {
      const uint32_t s = membership[j];
      if (!set_covered[s]) {
        set_covered[s] = 1;
        ++covered;
      }
    }
  }
  // All sets covered (or no positive-gain node left): pad with arbitrary
  // distinct nodes, as the legacy selector did.
  for (NodeId u = 0; u < graph_.num_nodes() && result.seeds.size() < k; ++u) {
    if (!selected[u]) {
      result.seeds.push_back(u);
      selected[u] = 1;
    }
  }
  result.covered_fraction = static_cast<double>(covered) / num;
  return result;
}

double RrCollection::CoveredFraction(const std::vector<NodeId>& seeds) const {
  const std::size_t num = num_sets();
  if (num == 0) return 0.0;
  std::vector<char> is_seed(graph_.num_nodes(), 0);
  for (NodeId s : seeds) is_seed[s] = 1;
  std::size_t covered = 0;
  for (std::size_t s = 0; s < num; ++s) {
    for (std::size_t j = offsets_[s]; j < offsets_[s + 1]; ++j) {
      if (is_seed[entries_[j]]) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / num;
}

std::size_t RrCollection::MemoryBytes() const {
  return entries_.capacity() * sizeof(NodeId) +
         offsets_.capacity() * sizeof(std::size_t) +
         widths_.capacity() * sizeof(uint64_t);
}

}  // namespace holim

#include "algo/rr_sets.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.h"

namespace holim {

RrCollection::RrCollection(const Graph& graph, const InfluenceParams& params,
                           bool track_widths, bool build_index)
    : graph_(&graph),
      params_(params),
      track_widths_(track_widths),
      build_index_(build_index),
      visited_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges());
  offsets_.push_back(0);
  if (build_index_) cover_count_.assign(graph.num_nodes(), 0);
}

void RrCollection::Clear() {
  entries_.clear();
  offsets_.assign(1, 0);
  widths_.clear();
  total_width_ = 0;
  segments_.clear();
  if (build_index_) cover_count_.assign(graph_->num_nodes(), 0);
  indexed_sets_ = 0;
  records_.clear();
  replayable_ = true;  // nothing left that a serial stream produced
  ++epoch_;  // outstanding snapshots would dangle; invalidate them
}

uint64_t RrCollection::SampleOne(Rng& rng, EpochSet& visited,
                                 std::vector<NodeId>& stack,
                                 std::vector<NodeId>& out) const {
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_->num_nodes()));
  visited.Reset(graph_->num_nodes());
  stack.clear();
  visited.Insert(root);
  stack.push_back(root);
  out.push_back(root);
  uint64_t width = 0;
  const bool lt = params_.model == DiffusionModel::kLinearThreshold;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    width += graph_->InDegree(v);
    auto in_neighbors = graph_->InNeighbors(v);
    auto in_edges = graph_->InEdgeIds(v);
    if (lt) {
      // Live-edge: v keeps at most one live in-edge, chosen w.p. w(u,v).
      double r = rng.NextDouble();
      for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
        const double w = params_.p(in_edges[i]);
        if (r < w) {
          const NodeId u = in_neighbors[i];
          if (!visited.Contains(u)) {
            visited.Insert(u);
            stack.push_back(u);
            out.push_back(u);
          }
          break;
        }
        r -= w;
      }
    } else {
      for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
        const NodeId u = in_neighbors[i];
        if (visited.Contains(u)) continue;
        if (rng.NextBernoulli(params_.p(in_edges[i]))) {
          visited.Insert(u);
          stack.push_back(u);
          out.push_back(u);
        }
      }
    }
  }
  return width;
}

void RrCollection::Generate(std::size_t count, Rng& rng) {
  // The caller's stream cannot be replayed later; ApplyDelta refuses.
  if (count > 0) replayable_ = false;
  offsets_.reserve(offsets_.size() + count);
  if (track_widths_) widths_.reserve(widths_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const uint64_t w = SampleOne(rng, visited_, stack_, entries_);
    offsets_.push_back(entries_.size());
    if (track_widths_) widths_.push_back(w);
    total_width_ += w;
  }
  if (build_index_) IndexNewSets(nullptr);
}

Status RrCollection::GenerateParallel(std::size_t count, uint64_t seed,
                                      ThreadPool* pool, Deadline* deadline) {
  if (count == 0) return Status::OK();
  records_.push_back({num_sets(), count, seed});
  ThreadPool& p = pool ? *pool : DefaultThreadPool();
  const std::size_t num_blocks =
      (count + kGenerateBlockSize - 1) / kGenerateBlockSize;

  // Shards only schedule blocks onto threads; each shard carries reusable
  // scratch and one output buffer, never RNG state — block seeds depend on
  // the global block index alone, so the merged arena does not depend on
  // thread count. Blocks are processed in waves of `shards` and merged
  // after each wave, capping peak transient memory at one wave of buffers
  // instead of a full second copy of the arena. When shard_counts is on,
  // each shard additionally accumulates per-node member counts across its
  // waves — the shard-local partial index reduced after the last wave to
  // shape the new index segment without an extra pass over the arena.
  struct ShardState {
    EpochSet visited;
    std::vector<NodeId> stack;
    std::vector<NodeId> entries;
    std::vector<uint32_t> sizes;
    std::vector<uint64_t> widths;
    std::vector<uint32_t> counts;  // partial index: per-node member counts
  };
  const std::size_t shards = std::max<std::size_t>(
      1, std::min<std::size_t>(p.num_threads() * 2, num_blocks));
  // Shard-local count partials move the index counting pass onto the pool,
  // but zeroing + reducing them costs O(shards * num_nodes) serial work on
  // the calling thread; the alternative is a single serial recount pass
  // over the new arena suffix, O(num_nodes + new entries). Partials only
  // win when the append dwarfs that fixed cost (new entries >= count, so
  // `count >= shards * n` guarantees the counting work moved off-thread at
  // least matches the serial overhead added).
  const bool shard_counts =
      build_index_ &&
      count >= shards * static_cast<std::size_t>(graph_->num_nodes());
  std::vector<ShardState> shard(shards);
  for (auto& s : shard) {
    s.visited.Reset(graph_->num_nodes());
    if (shard_counts) s.counts.assign(graph_->num_nodes(), 0);
  }

  offsets_.reserve(offsets_.size() + count);
  if (track_widths_) widths_.reserve(widths_.size() + count);
  const std::size_t entries_before = entries_.size();
  const std::size_t offsets_before = offsets_.size();
  const std::size_t widths_before = widths_.size();
  const uint64_t total_width_before = total_width_;
  std::size_t sets_done = 0;
  for (std::size_t wave_start = 0; wave_start < num_blocks;
       wave_start += shards) {
    const std::size_t wave_blocks =
        std::min(shards, num_blocks - wave_start);
    if (deadline) {
      // One tick per block, charged at the wave boundary: consumption is a
      // function of the block count alone, so the expiry point (and the
      // caller's degradation) is invariant to thread count.
      Status st = deadline->CheckN(wave_blocks);
      if (!st.ok()) {
        // Roll back this call's appends: a partial arena would depend on
        // where the waves were cut, and the index never saw these sets.
        entries_.resize(entries_before);
        offsets_.resize(offsets_before);
        widths_.resize(widths_before);
        total_width_ = total_width_before;
        records_.pop_back();
        return st;
      }
    }
    p.ParallelFor(wave_blocks, [&](std::size_t w) {
      ShardState& sc = shard[w];
      sc.entries.clear();
      sc.sizes.clear();
      sc.widths.clear();
      const std::size_t b = wave_start + w;
      uint64_t state = seed + kGenerateSeedSalt * (b + 1);
      Rng rng(Rng::SplitMix64(state));
      const std::size_t lo = b * kGenerateBlockSize;
      const std::size_t n = std::min(kGenerateBlockSize, count - lo);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t before = sc.entries.size();
        const uint64_t width =
            SampleOne(rng, sc.visited, sc.stack, sc.entries);
        sc.sizes.push_back(
            static_cast<uint32_t>(sc.entries.size() - before));
        sc.widths.push_back(width);
      }
      if (shard_counts) {
        for (std::size_t j = 0; j < sc.entries.size(); ++j) {
          ++sc.counts[sc.entries[j]];
        }
      }
    });
    for (std::size_t w = 0; w < wave_blocks; ++w) {
      const ShardState& sc = shard[w];
      entries_.insert(entries_.end(), sc.entries.begin(), sc.entries.end());
      std::size_t end = offsets_.back();
      for (std::size_t i = 0; i < sc.sizes.size(); ++i) {
        end += sc.sizes[i];
        offsets_.push_back(end);
        if (track_widths_) widths_.push_back(sc.widths[i]);
        total_width_ += sc.widths[i];
      }
      sets_done += sc.sizes.size();
    }
    if (wave_start == 0 && sets_done < count) {
      // Project the final arena size from the first wave's mean set size
      // (+5% slack) so later waves rarely trigger a doubling realloc.
      const std::size_t wave_entries = entries_.size() - entries_before;
      const std::size_t projected =
          entries_before + wave_entries * count / sets_done;
      entries_.reserve(projected + projected / 20);
    }
  }
  if (build_index_) {
    if (shard_counts) {
      // Reduce the shard partials (order-independent integer sums, so the
      // result does not depend on shard count) and index the appended sets.
      for (std::size_t w = 1; w < shards; ++w) {
        for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
          shard[0].counts[u] += shard[w].counts[u];
        }
      }
      IndexNewSets(shard[0].counts.data());
    } else {
      IndexNewSets(nullptr);
    }
  }
  return Status::OK();
}

void RrCollection::IndexNewSets(const uint32_t* new_counts) {
  const std::size_t first = indexed_sets_;
  const std::size_t total = num_sets();
  if (first == total) return;
  HOLIM_CHECK(total <= std::numeric_limits<uint32_t>::max());
  const NodeId n = graph_->num_nodes();
  std::vector<uint32_t> recount;
  if (new_counts == nullptr) {
    recount.assign(n, 0);
    for (std::size_t j = offsets_[first]; j < entries_.size(); ++j) {
      ++recount[entries_[j]];
    }
    new_counts = recount.data();
  }

  IndexSegment seg;
  seg.first_set = first;
  seg.num_sets = total - first;
  const std::size_t seg_entries = entries_.size() - offsets_[first];
  HOLIM_CHECK(seg_entries <= std::numeric_limits<uint32_t>::max());
  seg.offsets.resize(n + 1);
  seg.offsets[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    seg.offsets[u + 1] = seg.offsets[u] + new_counts[u];
    cover_count_[u] += new_counts[u];
  }
  seg.sets.resize(seg_entries);
  std::vector<uint32_t> cursor(seg.offsets.begin(), seg.offsets.end() - 1);
  for (std::size_t s = first; s < total; ++s) {
    for (std::size_t j = offsets_[s]; j < offsets_[s + 1]; ++j) {
      seg.sets[cursor[entries_[j]]++] = static_cast<uint32_t>(s);
    }
  }
  segments_.push_back(std::move(seg));
  indexed_sets_ = total;
  CompactSegments();
}

void RrCollection::CompactSegments() {
  const NodeId n = graph_->num_nodes();
  while (segments_.size() > kMaxIndexSegments) {
    std::size_t best = 0;
    std::size_t best_sets = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
      const std::size_t sz = segments_[i].num_sets + segments_[i + 1].num_sets;
      if (sz < best_sets) {
        best_sets = sz;
        best = i;
      }
    }
    IndexSegment& a = segments_[best];
    const IndexSegment& b = segments_[best + 1];
    HOLIM_CHECK(a.sets.size() + b.sets.size() <=
                std::numeric_limits<uint32_t>::max());
    IndexSegment merged;
    merged.first_set = a.first_set;
    merged.num_sets = a.num_sets + b.num_sets;
    merged.offsets.resize(n + 1);
    merged.sets.resize(a.sets.size() + b.sets.size());
    uint32_t pos = 0;
    merged.offsets[0] = 0;
    for (NodeId u = 0; u < n; ++u) {
      // a's sets all precede b's, so per-node ascending order is preserved
      // by plain concatenation.
      for (uint32_t j = a.offsets[u]; j < a.offsets[u + 1]; ++j) {
        merged.sets[pos++] = a.sets[j];
      }
      for (uint32_t j = b.offsets[u]; j < b.offsets[u + 1]; ++j) {
        merged.sets[pos++] = b.sets[j];
      }
      merged.offsets[u + 1] = pos;
    }
    a = std::move(merged);
    segments_.erase(segments_.begin() + best + 1);
  }
}

RrCollection::CoverageSnapshot RrCollection::Snapshot() const {
  HOLIM_CHECK(build_index_) << "constructed with build_index = false";
  HOLIM_CHECK(indexed_sets_ == num_sets());
  return CoverageSnapshot(this, epoch_, num_sets());
}

RrCollection::CoverageResult RrCollection::SelectMaxCoverage(
    uint32_t k) const {
  return Snapshot().SelectMaxCoverage(k);
}

namespace {

/// CELF heap entry: a stale upper bound on the node's marginal gain (gains
/// only shrink as sets get covered, so a stale value is always an upper
/// bound). Max-heap; ties prefer the smaller node id.
struct Candidate {
  uint32_t gain;
  NodeId node;
  bool operator<(const Candidate& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;
  }
};

}  // namespace

RrCollection::CoverageResult RrCollection::CoverageSnapshot::SelectMaxCoverage(
    uint32_t k, Deadline* deadline) const {
  HOLIM_CHECK(valid()) << "stale CoverageSnapshot: collection Cleared "
                       << "(snapshot epoch " << epoch_ << ", live epoch "
                       << rr_->epoch_ << ")";
  CoverageResult result;
  const std::size_t num = limit_;
  if (num == 0) return result;
  const NodeId n = rr_->graph_->num_nodes();

  // Re-counts a node's uncovered sets against the live segments, stopping
  // at this snapshot's pinned bound (per-node lists are ascending, and so
  // are segment ranges, so both cutoffs are early exits).
  std::vector<char> set_covered(num, 0);
  auto fresh_gain = [&](NodeId u) {
    uint32_t fresh = 0;
    for (const IndexSegment& seg : rr_->segments_) {
      if (seg.first_set >= num) break;
      for (uint32_t j = seg.offsets[u]; j < seg.offsets[u + 1]; ++j) {
        const uint32_t s = seg.sets[j];
        if (s >= num) break;
        if (!set_covered[s]) ++fresh;
      }
    }
    return fresh;
  };

  // CELF lazy greedy: take the candidate with the largest stale upper
  // bound, refresh its gain, and select only when the refreshed gain still
  // beats every remaining bound. cover_count_ counts every indexed set —
  // for a snapshot older than the latest append that is an over-estimate,
  // which CELF tolerates (upper bounds are refreshed before any selection).
  //
  // Instead of heapifying all candidates (the dominant cost of a round:
  // O(candidates) comparison-heavy sift-downs), candidates are counting-
  // sorted once by their exact initial bound — descending gain, ascending
  // node id within a gain level, i.e. exactly the Candidate heap order —
  // and consumed front to back. Only refreshed (re-inserted) nodes go
  // through a binary heap, and those are few: k=1 vs k=50 selections on the
  // same collection differ by well under a millisecond.
  uint32_t max_count = 0;
  std::size_t num_candidates = 0;
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t c = rr_->cover_count_[u];
    if (c > 0) ++num_candidates;
    max_count = std::max(max_count, c);
  }
  if (num_candidates == 0) max_count = 0;
  // Gain histogram, turned into suffix sums: after the loop, ge[c] is the
  // number of candidates with bound >= c, so gain level c occupies slots
  // [ge[c + 1], ge[c]) — levels descending, and the ascending node-id scan
  // below keeps ids ascending within each level (the Candidate heap order).
  std::vector<std::size_t> ge(max_count + 2, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (rr_->cover_count_[u] > 0) ++ge[rr_->cover_count_[u]];
  }
  for (uint32_t c = max_count; c >= 1; --c) ge[c] += ge[c + 1];
  std::vector<NodeId> sorted(num_candidates);
  {
    std::vector<std::size_t> cursor(ge.begin() + 1, ge.end());  // [c] = ge[c+1]
    for (NodeId u = 0; u < n; ++u) {
      const uint32_t c = rr_->cover_count_[u];
      if (c > 0) sorted[cursor[c]++] = u;
    }
  }

  std::priority_queue<Candidate> refreshed;
  std::size_t next_sorted = 0;
  std::vector<char> selected(n, 0);
  std::size_t covered = 0;
  while (result.seeds.size() < k &&
         (next_sorted < sorted.size() || !refreshed.empty())) {
    // Best remaining bound across the two pools (Candidate order: larger
    // gain first, then smaller node id).
    Candidate top;
    bool from_heap;
    if (next_sorted < sorted.size()) {
      top = {rr_->cover_count_[sorted[next_sorted]], sorted[next_sorted]};
      from_heap = !refreshed.empty() && top < refreshed.top();
      if (from_heap) top = refreshed.top();
    } else {
      top = refreshed.top();
      from_heap = true;
    }
    if (from_heap) {
      refreshed.pop();
    } else {
      ++next_sorted;
    }
    if (selected[top.node]) continue;
    const uint32_t fresh = fresh_gain(top.node);
    if (fresh == 0) continue;  // nothing uncovered left under this node
    Candidate next{0, 0};
    bool have_next = false;
    if (next_sorted < sorted.size()) {
      next = {rr_->cover_count_[sorted[next_sorted]], sorted[next_sorted]};
      have_next = true;
    }
    if (!refreshed.empty() && (!have_next || next < refreshed.top())) {
      next = refreshed.top();
      have_next = true;
    }
    if (have_next && Candidate{fresh, top.node} < next) {
      refreshed.push({fresh, top.node});
      continue;
    }
    if (deadline && !deadline->Check().ok()) {
      // Prefix seeds are valid greedy output; skip the padding below too.
      result.deadline_hit = true;
      return result;
    }
    result.seeds.push_back(top.node);
    selected[top.node] = 1;
    for (const IndexSegment& seg : rr_->segments_) {
      if (seg.first_set >= num) break;
      for (uint32_t j = seg.offsets[top.node]; j < seg.offsets[top.node + 1];
           ++j) {
        const uint32_t s = seg.sets[j];
        if (s >= num) break;
        if (!set_covered[s]) {
          set_covered[s] = 1;
          ++covered;
        }
      }
    }
  }
  // All sets covered (or no positive-gain node left): pad with arbitrary
  // distinct nodes, as the legacy selector did.
  for (NodeId u = 0; u < n && result.seeds.size() < k; ++u) {
    if (!selected[u]) {
      result.seeds.push_back(u);
      selected[u] = 1;
    }
  }
  result.covered_fraction = static_cast<double>(covered) / num;
  return result;
}

RrCollection::CoverageResult RrCollection::SelectMaxCoverageRebuild(
    uint32_t k) const {
  CoverageResult result;
  const std::size_t num = num_sets();
  if (num == 0) return result;
  // Transient flat inverted index over the whole arena: node -> set ids.
  std::vector<uint32_t> degree(graph_->num_nodes(), 0);
  for (NodeId u : entries_) ++degree[u];
  std::vector<std::size_t> index_offsets(graph_->num_nodes() + 1, 0);
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
    index_offsets[u + 1] = index_offsets[u] + degree[u];
  }
  std::vector<uint32_t> membership(entries_.size());
  std::vector<std::size_t> cursor(index_offsets.begin(),
                                  index_offsets.end() - 1);
  for (std::size_t s = 0; s < num; ++s) {
    for (std::size_t j = offsets_[s]; j < offsets_[s + 1]; ++j) {
      membership[cursor[entries_[j]]++] = static_cast<uint32_t>(s);
    }
  }

  std::priority_queue<Candidate> heap;
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
    if (degree[u] > 0) heap.push({degree[u], u});
  }

  std::vector<char> set_covered(num, 0);
  std::vector<char> selected(graph_->num_nodes(), 0);
  std::size_t covered = 0;
  while (result.seeds.size() < k && !heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (selected[top.node]) continue;
    uint32_t fresh = 0;
    for (std::size_t j = index_offsets[top.node];
         j < index_offsets[top.node + 1]; ++j) {
      if (!set_covered[membership[j]]) ++fresh;
    }
    if (fresh == 0) continue;  // nothing uncovered left under this node
    if (!heap.empty()) {
      const Candidate& next = heap.top();
      if (Candidate{fresh, top.node} < next) {
        heap.push({fresh, top.node});
        continue;
      }
    }
    result.seeds.push_back(top.node);
    selected[top.node] = 1;
    for (std::size_t j = index_offsets[top.node];
         j < index_offsets[top.node + 1]; ++j) {
      const uint32_t s = membership[j];
      if (!set_covered[s]) {
        set_covered[s] = 1;
        ++covered;
      }
    }
  }
  // All sets covered (or no positive-gain node left): pad with arbitrary
  // distinct nodes, as the legacy selector did.
  for (NodeId u = 0; u < graph_->num_nodes() && result.seeds.size() < k; ++u) {
    if (!selected[u]) {
      result.seeds.push_back(u);
      selected[u] = 1;
    }
  }
  result.covered_fraction = static_cast<double>(covered) / num;
  return result;
}

double RrCollection::CoveredFraction(const std::vector<NodeId>& seeds) const {
  const std::size_t num = num_sets();
  if (num == 0) return 0.0;
  std::vector<char> is_seed(graph_->num_nodes(), 0);
  for (NodeId s : seeds) is_seed[s] = 1;
  std::size_t covered = 0;
  for (std::size_t s = 0; s < num; ++s) {
    for (std::size_t j = offsets_[s]; j < offsets_[s + 1]; ++j) {
      if (is_seed[entries_[j]]) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / num;
}

std::size_t RrCollection::MemoryBytes() const {
  return entries_.capacity() * sizeof(NodeId) +
         offsets_.capacity() * sizeof(std::size_t) +
         widths_.capacity() * sizeof(uint64_t);
}

std::size_t RrCollection::IndexMemoryBytes() const {
  std::size_t bytes = cover_count_.capacity() * sizeof(uint32_t);
  for (const IndexSegment& seg : segments_) {
    bytes += seg.offsets.capacity() * sizeof(uint32_t) +
             seg.sets.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

Status RrCollection::ApplyDelta(const Graph& new_graph,
                                const InfluenceParams& new_params) {
  if (new_params.probability.size() != new_graph.num_edges()) {
    return Status::InvalidArgument(
        "params/graph edge count mismatch: " +
        std::to_string(new_params.probability.size()) + " probabilities vs " +
        std::to_string(new_graph.num_edges()) + " edges");
  }
  if (new_params.model != params_.model) {
    return Status::InvalidArgument(
        "diffusion model changed across the delta; rebuild the collection");
  }
  if (!replayable_) {
    return Status::InvalidArgument(
        "collection holds serially generated sets whose RNG stream cannot "
        "be replayed; Clear() or rebuild instead");
  }
  const Graph& old_graph = *graph_;
  const NodeId n_old = old_graph.num_nodes();
  const NodeId n_new = new_graph.num_nodes();

  // A block replays identically iff no popped node's in-row changed — the
  // popped nodes are exactly the set members. A node-count change shifts
  // the root draw NextBounded(n) of every set, so everything goes dirty.
  std::vector<uint8_t> node_dirty(n_new, 1);
  if (n_new == n_old) {
    for (NodeId v = 0; v < n_new; ++v) {
      const auto old_src = old_graph.InNeighbors(v);
      const auto new_src = new_graph.InNeighbors(v);
      bool is_dirty = old_src.size() != new_src.size();
      if (!is_dirty) {
        const auto old_ids = old_graph.InEdgeIds(v);
        const auto new_ids = new_graph.InEdgeIds(v);
        for (std::size_t i = 0; i < old_src.size(); ++i) {
          if (old_src[i] != new_src[i] ||
              params_.p(old_ids[i]) != new_params.p(new_ids[i])) {
            is_dirty = true;
            break;
          }
        }
      }
      node_dirty[v] = is_dirty ? 1 : 0;
    }
  }

  // One pass over the arena: per-set affected flag + per-set width (width
  // is the in-degree sum over members; clean members keep their in-degree,
  // so clean sets keep their width even when widths_ is not stored).
  const std::size_t total = num_sets();
  std::vector<uint8_t> set_affected(total, 0);
  std::vector<uint64_t> set_width(total, 0);
  for (std::size_t s = 0; s < total; ++s) {
    bool affected = false;
    uint64_t width = 0;
    for (std::size_t j = offsets_[s]; j < offsets_[s + 1]; ++j) {
      const NodeId v = entries_[j];
      affected |= node_dirty[v] != 0;
      width += old_graph.InDegree(v);
    }
    set_affected[s] = affected ? 1 : 0;
    set_width[s] = width;
  }

  // Rebind before the rebuild: dirty blocks resample through SampleOne,
  // which reads graph_/params_; clean blocks only copy old arena spans.
  graph_ = &new_graph;
  params_ = new_params;
  visited_.Reset(n_new);

  std::vector<NodeId> new_entries;
  std::vector<std::size_t> new_offsets;
  std::vector<uint64_t> new_widths;
  new_entries.reserve(entries_.size());
  new_offsets.reserve(offsets_.size());
  new_offsets.push_back(0);
  if (track_widths_) new_widths.reserve(total);
  total_width_ = 0;
  std::vector<NodeId> block_buffer;
  std::vector<uint32_t> block_sizes;
  std::vector<uint64_t> block_widths;
  for (const GenerateRecord& rec : records_) {
    const std::size_t num_blocks =
        (rec.count + kGenerateBlockSize - 1) / kGenerateBlockSize;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::size_t lo = rec.first_set + b * kGenerateBlockSize;
      const std::size_t hi =
          std::min(lo + kGenerateBlockSize, rec.first_set + rec.count);
      bool block_dirty = false;
      for (std::size_t s = lo; s < hi && !block_dirty; ++s) {
        block_dirty = set_affected[s] != 0;
      }
      if (!block_dirty) {
        new_entries.insert(new_entries.end(), entries_.begin() + offsets_[lo],
                           entries_.begin() + offsets_[hi]);
        for (std::size_t s = lo; s < hi; ++s) {
          new_offsets.push_back(new_offsets.back() +
                                (offsets_[s + 1] - offsets_[s]));
          if (track_widths_) new_widths.push_back(set_width[s]);
          total_width_ += set_width[s];
        }
        continue;
      }
      // Resample the whole block from its recorded seed — the exact draw
      // sequence GenerateParallel would produce on the new graph.
      uint64_t state = rec.seed + kGenerateSeedSalt * (b + 1);
      Rng rng(Rng::SplitMix64(state));
      block_buffer.clear();
      block_sizes.clear();
      block_widths.clear();
      for (std::size_t s = lo; s < hi; ++s) {
        const std::size_t before = block_buffer.size();
        const uint64_t width = SampleOne(rng, visited_, stack_, block_buffer);
        block_sizes.push_back(
            static_cast<uint32_t>(block_buffer.size() - before));
        block_widths.push_back(width);
      }
      new_entries.insert(new_entries.end(), block_buffer.begin(),
                         block_buffer.end());
      for (std::size_t i = 0; i < block_sizes.size(); ++i) {
        new_offsets.push_back(new_offsets.back() + block_sizes[i]);
        if (track_widths_) new_widths.push_back(block_widths[i]);
        total_width_ += block_widths[i];
      }
    }
  }
  entries_ = std::move(new_entries);
  offsets_ = std::move(new_offsets);
  widths_ = std::move(new_widths);

  // The old segments' per-node grouping is stale wherever a set changed
  // membership (and n may have grown); rebuild the index as one segment.
  segments_.clear();
  indexed_sets_ = 0;
  if (build_index_) {
    cover_count_.assign(n_new, 0);
    IndexNewSets(nullptr);
  }
  ++epoch_;  // outstanding snapshots view pre-delta set ids; invalidate
  return Status::OK();
}

}  // namespace holim

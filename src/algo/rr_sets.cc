#include "algo/rr_sets.h"

#include <algorithm>

#include "util/logging.h"

namespace holim {

RrCollection::RrCollection(const Graph& graph, const InfluenceParams& params)
    : graph_(graph), params_(params), visited_(graph.num_nodes()) {
  HOLIM_CHECK(params.probability.size() == graph.num_edges());
}

void RrCollection::Clear() {
  sets_.clear();
  total_entries_ = 0;
  total_width_ = 0;
}

void RrCollection::SampleOne(Rng& rng) {
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  visited_.Reset(graph_.num_nodes());
  stack_.clear();
  std::vector<NodeId> rr;
  visited_.Insert(root);
  stack_.push_back(root);
  rr.push_back(root);
  const bool lt = params_.model == DiffusionModel::kLinearThreshold;
  while (!stack_.empty()) {
    const NodeId v = stack_.back();
    stack_.pop_back();
    total_width_ += graph_.InDegree(v);
    auto in_neighbors = graph_.InNeighbors(v);
    auto in_edges = graph_.InEdgeIds(v);
    if (lt) {
      // Live-edge: v keeps at most one live in-edge, chosen w.p. w(u,v).
      double r = rng.NextDouble();
      for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
        const double w = params_.p(in_edges[i]);
        if (r < w) {
          const NodeId u = in_neighbors[i];
          if (!visited_.Contains(u)) {
            visited_.Insert(u);
            stack_.push_back(u);
            rr.push_back(u);
          }
          break;
        }
        r -= w;
      }
    } else {
      for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
        const NodeId u = in_neighbors[i];
        if (visited_.Contains(u)) continue;
        if (rng.NextBernoulli(params_.p(in_edges[i]))) {
          visited_.Insert(u);
          stack_.push_back(u);
          rr.push_back(u);
        }
      }
    }
  }
  total_entries_ += rr.size();
  sets_.push_back(std::move(rr));
}

void RrCollection::Generate(std::size_t count, Rng& rng) {
  sets_.reserve(sets_.size() + count);
  for (std::size_t i = 0; i < count; ++i) SampleOne(rng);
}

RrCollection::CoverageResult RrCollection::SelectMaxCoverage(uint32_t k) const {
  CoverageResult result;
  if (sets_.empty()) return result;
  // Node -> list of set indices containing it (built once per call).
  std::vector<uint32_t> degree(graph_.num_nodes(), 0);
  for (const auto& rr : sets_) {
    for (NodeId u : rr) ++degree[u];
  }
  std::vector<std::size_t> offsets(graph_.num_nodes() + 1, 0);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    offsets[u + 1] = offsets[u] + degree[u];
  }
  std::vector<uint32_t> membership(total_entries_);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (uint32_t s = 0; s < sets_.size(); ++s) {
    for (NodeId u : sets_[s]) membership[cursor[u]++] = s;
  }

  std::vector<char> set_covered(sets_.size(), 0);
  std::vector<uint32_t> gain(degree.begin(), degree.end());
  std::size_t covered = 0;
  // Lazy-greedy with a simple bucket-free priority scan: k is small, and
  // each pick decrements gains of co-members, so a full argmax scan per
  // pick (O(kn)) is acceptable and allocation-free.
  for (uint32_t i = 0; i < k; ++i) {
    NodeId best = kInvalidNode;
    uint32_t best_gain = 0;
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (gain[u] > best_gain) {
        best_gain = gain[u];
        best = u;
      }
    }
    if (best == kInvalidNode) {
      // All sets covered; pad with arbitrary distinct nodes.
      for (NodeId u = 0; u < graph_.num_nodes() &&
                         result.seeds.size() < k; ++u) {
        if (std::find(result.seeds.begin(), result.seeds.end(), u) ==
            result.seeds.end()) {
          result.seeds.push_back(u);
        }
      }
      break;
    }
    result.seeds.push_back(best);
    for (std::size_t j = offsets[best]; j < offsets[best + 1]; ++j) {
      const uint32_t s = membership[j];
      if (set_covered[s]) continue;
      set_covered[s] = 1;
      ++covered;
      for (NodeId u : sets_[s]) {
        if (gain[u] > 0) --gain[u];
      }
    }
    gain[best] = 0;
  }
  result.covered_fraction = static_cast<double>(covered) / sets_.size();
  return result;
}

double RrCollection::CoveredFraction(const std::vector<NodeId>& seeds) const {
  if (sets_.empty()) return 0.0;
  std::vector<char> is_seed(graph_.num_nodes(), 0);
  for (NodeId s : seeds) is_seed[s] = 1;
  std::size_t covered = 0;
  for (const auto& rr : sets_) {
    for (NodeId u : rr) {
      if (is_seed[u]) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / sets_.size();
}

std::size_t RrCollection::MemoryBytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(std::vector<NodeId>);
  for (const auto& rr : sets_) bytes += rr.capacity() * sizeof(NodeId);
  return bytes;
}

}  // namespace holim

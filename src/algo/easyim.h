#ifndef HOLIM_ALGO_EASYIM_H_
#define HOLIM_ALGO_EASYIM_H_

#include <cstdint>
#include <vector>

#include "algo/score_sweep.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/thread_pool.h"

namespace holim {

/// EaSyIM's per-node recurrence bound to the shared sweep kernel:
///   Delta_i(u) = sum_{v in Out(u)} p(u,v) * (1 + Delta_{i-1}(v)),
/// final score = Delta_l(u).
class EasyImSweepPolicy {
 public:
  using Value = double;

  EasyImSweepPolicy(const Graph& graph, const InfluenceParams& params,
                    uint32_t l)
      : graph_(graph), params_(params), l_(l) {}

  Value Zero() const { return 0.0; }
  Value Init(NodeId) const { return 0.0; }

  Value Compute(NodeId u, const Value* prev, const EpochSet& excluded) const {
    double acc = 0.0;
    const EdgeId base = graph_.OutEdgeBegin(u);
    auto neighbors = graph_.OutNeighbors(u);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const NodeId v = neighbors[j];
      if (excluded.Contains(v)) continue;
      acc += params_.p(base + j) * (1.0 + prev[v]);
    }
    return acc;
  }

  void AccumulateScore(NodeId, double* score, const Value& v,
                       uint32_t level) const {
    if (level == l_) *score = v;
  }

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  uint32_t l_;
};

/// \brief EaSyIM score assignment (paper Algorithm 4).
///
/// Assigns each node u the weighted count of walks of length <= l starting
/// at u, where a walk's weight is the product of its edge probabilities,
/// computed over G(V \ excluded, E). The full pass runs in O(l(m+n)) time
/// and O(n) extra space — the linear-space/time property that makes the
/// algorithm scalable (paper Sec. 3.2.1). All three entry points produce
/// bitwise-identical scores; they differ only in execution strategy (see
/// algo/score_sweep.h for the kernel's determinism contract).
class EasyImScorer {
 public:
  EasyImScorer(const Graph& graph, const InfluenceParams& params, uint32_t l);

  /// Computes Delta_l for every node into `scores` (resized to n).
  /// Nodes in `excluded` are removed from the graph for this computation
  /// (their score is set to -infinity so they are never re-picked).
  void AssignScores(const EpochSet& excluded, std::vector<double>* scores);

  /// Parallel score assignment: each of the l sweeps is a data-parallel
  /// pass in fixed node blocks (reads prev buffer, writes cur), so sharding
  /// is race-free and bitwise-identical to the serial pass for any thread
  /// count. Pass nullptr to use the process default pool.
  void AssignScoresParallel(const EpochSet& excluded,
                            std::vector<double>* scores,
                            ThreadPool* pool = nullptr);

  /// Incremental score assignment across greedy rounds: `newly_excluded`
  /// must list exactly the nodes added to `excluded` since the previous
  /// call (nullptr forces a full rebuild of the per-level state). Only
  /// nodes within l reverse hops of the new exclusions are recomputed;
  /// output is bitwise identical to AssignScores. Trades the oracle path's
  /// O(n) space for O(l n) per-level state (allocated on first use).
  /// `pool == nullptr` runs serially (same convention as AssignScores, so
  /// incremental-vs-full timing comparisons are not confounded by
  /// threading); pass a pool explicitly to shard the recomputes.
  void AssignScoresIncremental(const EpochSet& excluded,
                               const std::vector<NodeId>* newly_excluded,
                               std::vector<double>* scores,
                               ThreadPool* pool = nullptr);

  uint32_t path_length() const { return engine_.path_length(); }

  /// Forwards to ScoreSweepEngine::set_incremental_fallback_fraction: the
  /// dirty-frontier fraction of n above which an incremental rescore falls
  /// back to one full leveled rebuild (bitwise-identical scores).
  void set_incremental_fallback_fraction(double fraction) {
    engine_.set_incremental_fallback_fraction(fraction);
  }

  /// Extra working memory beyond the graph/params (capacity-based, see
  /// ScoreSweepStats): the two O(n) rolling buffers, plus the incremental
  /// level table once AssignScoresIncremental has been used.
  std::size_t ScratchBytes() const { return engine_.ScratchBytes(); }

  /// Work/memory counters of the underlying sweep kernel.
  const ScoreSweepStats& stats() const { return engine_.stats(); }

 private:
  ScoreSweepEngine<EasyImSweepPolicy> engine_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_EASYIM_H_

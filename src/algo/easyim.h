#ifndef HOLIM_ALGO_EASYIM_H_
#define HOLIM_ALGO_EASYIM_H_

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "model/influence_params.h"
#include "util/thread_pool.h"

namespace holim {

/// \brief EaSyIM score assignment (paper Algorithm 4).
///
/// Assigns each node u the weighted count of walks of length <= l starting
/// at u, where a walk's weight is the product of its edge probabilities:
///
///   Delta_i(u) = sum_{v in Out(u)} p(u,v) * (1 + Delta_{i-1}(v))
///
/// computed over G(V \ excluded, E). Runs in O(l(m+n)) time and O(n) extra
/// space — the linear-space/time property that makes the algorithm scalable
/// (paper Sec. 3.2.1).
class EasyImScorer {
 public:
  EasyImScorer(const Graph& graph, const InfluenceParams& params, uint32_t l);

  /// Computes Delta_l for every node into `scores` (resized to n).
  /// Nodes in `excluded` are removed from the graph for this computation
  /// (their score is set to -infinity so they are never re-picked).
  void AssignScores(const EpochSet& excluded, std::vector<double>* scores);

  /// Parallel score assignment: each of the l sweeps is a data-parallel
  /// pass over nodes (reads prev buffer, writes cur), so sharding by node
  /// range is race-free and bitwise-identical to the serial pass. This is
  /// the shared-memory step toward the paper's future-work "distributed
  /// version". Pass nullptr to use the process default pool.
  void AssignScoresParallel(const EpochSet& excluded,
                            std::vector<double>* scores,
                            ThreadPool* pool = nullptr);

  uint32_t path_length() const { return l_; }

  /// Extra working memory (the two O(n) score buffers).
  std::size_t ScratchBytes() const {
    return 2 * prev_.capacity() * sizeof(double);
  }

 private:
  const Graph& graph_;
  const InfluenceParams& params_;
  uint32_t l_;
  std::vector<double> prev_;  // Delta_{i-1}
  std::vector<double> cur_;   // Delta_i
};

}  // namespace holim

#endif  // HOLIM_ALGO_EASYIM_H_

#ifndef HOLIM_ALGO_SCORE_SWEEP_H_
#define HOLIM_ALGO_SCORE_SWEEP_H_

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace holim {

/// Nodes per ParallelForBlocks range in the sweep kernel. Fixed (independent
/// of thread count) so the work partition — and therefore every per-node
/// accumulation — is identical for any pool size.
inline constexpr std::size_t kSweepBlockNodes = 2048;

/// Work/memory counters of a ScoreSweepEngine, for the scorer stats output
/// and the BENCH_scoring.json work-ratio gate. All byte figures follow the
/// repo-wide accounting convention: allocated capacity(), not size().
struct ScoreSweepStats {
  /// Complete l-level passes (rolling or leveled rebuild).
  uint64_t full_sweeps = 0;
  /// Dirty-frontier passes that reused the per-level state.
  uint64_t incremental_sweeps = 0;
  /// Incremental passes abandoned for a full leveled rebuild because the
  /// dirty frontier blew past the fallback fraction (hub exclusions on
  /// scale-free graphs dirty most of the graph, where recompute-everything
  /// is cheaper than frontier bookkeeping). Each such pass also counts one
  /// full_sweep (the rebuild that replaced it), not an incremental_sweep.
  uint64_t fallback_sweeps = 0;
  /// Node-level Delta evaluations done by full passes (l * n each).
  uint64_t nodes_full = 0;
  /// Node-level Delta evaluations done by incremental passes.
  uint64_t nodes_incremental = 0;
  /// O(n) rolling prev/cur buffers (always allocated).
  std::size_t rolling_bytes = 0;
  /// O((l+1) n) per-level state + persistent scores (0 until the first
  /// incremental pass — the oracle path keeps the paper's O(n) contract).
  std::size_t level_bytes = 0;
  /// Frontier scratch of the incremental path (dirty lists, stamps, flags).
  std::size_t frontier_bytes = 0;

  std::size_t ScratchBytes() const {
    return rolling_bytes + level_bytes + frontier_bytes;
  }
};

/// \brief Shared pull-based CSR sweep kernel behind EaSyIM and OSIM
/// (paper Algorithms 4 and 5).
///
/// Both algorithms are the same recurrence with different per-node state:
/// level i's value of node u is a fold over u's out-edges of level i-1's
/// values, skipping excluded endpoints. The Policy supplies the state type
/// and the fold; the engine supplies two execution strategies:
///
///  1. FullSweep — the paper's O(l(m+n)) time / O(n) space oracle path.
///     Two rolling Value buffers; each level is one data-parallel pass
///     sharded with ThreadPool::ParallelForBlocks in fixed node blocks.
///     Every node writes only its own slot and folds its out-edges in CSR
///     order, so the result is bitwise identical for any thread count.
///
///  2. Rescore — incremental re-scoring across ScoreGREEDY rounds. Keeps
///     the full (l+1)-level value table (O(l n) space, a deliberate
///     space-for-time trade against the oracle path). Excluding seed set X
///     only perturbs nodes within l reverse hops of X: level i must be
///     recomputed for dirty_i = X ∪ InNeighbors(X) ∪ InNeighbors(changed at
///     level i-1), where "changed" is detected by exact Value comparison.
///     Recomputing a node from unchanged inputs replays the identical fold,
///     so Rescore output is bitwise identical to a full recompute — the
///     equality is exact, not approximate, and is enforced by tests.
///
/// Policy requirements (see EasyImSweepPolicy / OsimSweepPolicy):
///   using Value = <regular type with operator==>;
///   Value Zero() const;                  // state of an excluded node
///   Value Init(NodeId u) const;          // level-0 state (excluded-agnostic)
///   Value Compute(NodeId u, const Value* prev,
///                 const EpochSet& excluded) const;
///       // one pull fold over u's out-edges in CSR order, skipping
///       // excluded targets; must not read prev[v] of an excluded v
///   void AccumulateScore(NodeId u, double* score, const Value& v,
///                        uint32_t level) const;
///       // folds level `v` (1-based) into the node's final score; called
///       // in increasing-level order starting from *score = 0
template <typename Policy>
class ScoreSweepEngine {
 public:
  using Value = typename Policy::Value;

  ScoreSweepEngine(const Graph& graph, Policy policy, uint32_t l)
      : graph_(graph),
        policy_(std::move(policy)),
        l_(l),
        prev_(graph.num_nodes()),
        cur_(graph.num_nodes()) {
    HOLIM_CHECK(l >= 1) << "path length l must be >= 1";
  }

  uint32_t path_length() const { return l_; }

  /// Full l-level rolling sweep into `scores` (resized to n; excluded nodes
  /// get -infinity). `pool == nullptr` runs serially.
  void FullSweep(const EpochSet& excluded, std::vector<double>* scores,
                 ThreadPool* pool = nullptr) {
    const NodeId n = graph_.num_nodes();
    scores->assign(n, 0.0);
    InitValues(prev_.data(), pool);
    double* score = scores->data();
    for (uint32_t i = 1; i <= l_; ++i) {
      SweepLevel(excluded, i, prev_.data(), cur_.data(), score, pool);
      std::swap(prev_, cur_);
    }
    MaskExcluded(excluded, scores);
    ++stats_.full_sweeps;
    stats_.nodes_full += static_cast<uint64_t>(l_) * n;
  }

  /// Incremental re-score. Contract: `excluded` must equal the set of the
  /// previous Rescore call plus exactly the nodes in `*newly`. Pass
  /// `newly == nullptr` when that does not hold (first call, or the caller
  /// scored against an unrelated set in between) — the engine then rebuilds
  /// the level table with a full leveled sweep. Output is bitwise identical
  /// to FullSweep(excluded, ...) either way.
  void Rescore(const EpochSet& excluded, const std::vector<NodeId>* newly,
               std::vector<double>* scores, ThreadPool* pool) {
    const NodeId n = graph_.num_nodes();
    EnsureLevelState();
    if (newly == nullptr || !levels_valid_) {
      RebuildLevels(excluded, pool);
    } else {
      IncrementalPass(excluded, *newly, pool);
    }
    scores->resize(n);
    for (NodeId u = 0; u < n; ++u) {
      (*scores)[u] = excluded.Contains(u)
                         ? -std::numeric_limits<double>::infinity()
                         : score_[u];
    }
  }

  /// Forgets the per-level state; the next Rescore does a full rebuild.
  void InvalidateLevels() { levels_valid_ = false; }

  /// Dirty-frontier size (as a fraction of n) above which an incremental
  /// pass abandons frontier bookkeeping and rebuilds the level table with
  /// one full sweep. Scores are bitwise identical either way — this is
  /// purely a work heuristic for hub-heavy (scale-free) graphs, where
  /// excluding a hub dirties most of the graph and the incremental pass
  /// degrades to a slower full sweep. >= 1 disables the fallback.
  void set_incremental_fallback_fraction(double fraction) {
    incremental_fallback_fraction_ = fraction;
  }
  double incremental_fallback_fraction() const {
    return incremental_fallback_fraction_;
  }

  const ScoreSweepStats& stats() const {
    stats_.rolling_bytes =
        (prev_.capacity() + cur_.capacity()) * sizeof(Value);
    stats_.level_bytes = levels_.capacity() * sizeof(Value) +
                         score_.capacity() * sizeof(double);
    stats_.frontier_bytes =
        (dirty_.capacity() + base_dirty_.capacity() + changed_.capacity() +
         touched_.capacity()) *
            sizeof(NodeId) +
        changed_flag_.capacity() * sizeof(uint8_t) + stamp_.size_bytes() +
        touched_stamp_.size_bytes();
    return stats_;
  }

  std::size_t ScratchBytes() const { return stats().ScratchBytes(); }

 private:
  // Level-0 initialisation, sharded like the level passes.
  void InitValues(Value* out, ThreadPool* pool) {
    const NodeId n = graph_.num_nodes();
    auto block = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t u = lo; u < hi; ++u) {
        out[u] = policy_.Init(static_cast<NodeId>(u));
      }
    };
    if (pool == nullptr) {
      block(0, n);
    } else {
      pool->ParallelForBlocks(n, kSweepBlockNodes, block);
    }
  }

  // One data-parallel level pass: cur[u] = Compute(u, prev) for all nodes,
  // folding the level into `score` when given (rolling mode).
  void SweepLevel(const EpochSet& excluded, uint32_t level, const Value* prev,
                  Value* cur, double* score, ThreadPool* pool) {
    const NodeId n = graph_.num_nodes();
    auto block = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const NodeId u = static_cast<NodeId>(i);
        cur[u] = excluded.Contains(u) ? policy_.Zero()
                                      : policy_.Compute(u, prev, excluded);
        if (score != nullptr) {
          policy_.AccumulateScore(u, &score[u], cur[u], level);
        }
      }
    };
    if (pool == nullptr) {
      block(0, n);
    } else {
      pool->ParallelForBlocks(n, kSweepBlockNodes, block);
    }
  }

  void MaskExcluded(const EpochSet& excluded, std::vector<double>* scores) {
    const NodeId n = graph_.num_nodes();
    for (NodeId u = 0; u < n; ++u) {
      if (excluded.Contains(u)) {
        (*scores)[u] = -std::numeric_limits<double>::infinity();
      }
    }
  }

  void EnsureLevelState() {
    if (!levels_.empty()) return;
    const std::size_t n = graph_.num_nodes();
    levels_.resize(static_cast<std::size_t>(l_ + 1) * n);
    score_.resize(n);
    changed_flag_.resize(n, 0);
  }

  Value* Level(uint32_t i) {
    return levels_.data() + static_cast<std::size_t>(i) * graph_.num_nodes();
  }

  // Full leveled sweep: same values as FullSweep, but materializing every
  // level so later calls can rescore incrementally.
  void RebuildLevels(const EpochSet& excluded, ThreadPool* pool) {
    const NodeId n = graph_.num_nodes();
    std::fill(score_.begin(), score_.end(), 0.0);
    InitValues(Level(0), pool);
    for (uint32_t i = 1; i <= l_; ++i) {
      SweepLevel(excluded, i, Level(i - 1), Level(i), score_.data(), pool);
    }
    levels_valid_ = true;
    ++stats_.full_sweeps;
    stats_.nodes_full += static_cast<uint64_t>(l_) * n;
  }

  // Appends u to `out` (deduped by stamp_). Serial, so the list order is
  // deterministic regardless of the pool size used for value recomputes.
  void AddDirty(NodeId u, std::vector<NodeId>* out) {
    if (stamp_.Contains(u)) return;
    stamp_.Insert(u);
    out->push_back(u);
  }

  // Dirty-frontier pass: recompute exactly the nodes whose value can differ
  // from the previous (valid) level table after excluding `newly`.
  void IncrementalPass(const EpochSet& excluded,
                       const std::vector<NodeId>& newly, ThreadPool* pool) {
    const NodeId n = graph_.num_nodes();
    // base dirty = X ∪ InNeighbors(X): these see a structural change (the
    // node itself, or one of its out-edge terms, dropped) at EVERY level.
    stamp_.Reset(n);
    base_dirty_.clear();
    for (NodeId x : newly) AddDirty(x, &base_dirty_);
    for (NodeId x : newly) {
      for (NodeId w : graph_.InNeighbors(x)) AddDirty(w, &base_dirty_);
    }
    touched_stamp_.Reset(n);
    touched_.clear();
    // Level 0 is Init-only (exclusion-agnostic): nothing changed yet.
    changed_.clear();
    for (uint32_t i = 1; i <= l_; ++i) {
      // dirty_i = base ∪ InNeighbors(changed_{i-1}), deduped serially so
      // the list (and the fixed-block partition over it) is deterministic.
      stamp_.Reset(n);
      dirty_.clear();
      for (NodeId u : base_dirty_) AddDirty(u, &dirty_);
      for (NodeId u : changed_) {
        for (NodeId w : graph_.InNeighbors(u)) AddDirty(w, &dirty_);
      }
      // Hub-aware fallback: once the frontier covers most of the graph,
      // per-node bookkeeping costs more than recomputing everything.
      // RebuildLevels rewrites every level and score from scratch, so the
      // output stays bitwise identical to the incremental path.
      if (static_cast<double>(dirty_.size()) >
          incremental_fallback_fraction_ * n) {
        ++stats_.fallback_sweeps;
        RebuildLevels(excluded, pool);
        return;
      }
      // Ascending node order: the recompute then streams the level arrays
      // and the CSR instead of hopping in discovery order.
      std::sort(dirty_.begin(), dirty_.end());
      const Value* prev = Level(i - 1);
      Value* cur = Level(i);
      auto block = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          const NodeId u = dirty_[j];
          const Value v = excluded.Contains(u)
                              ? policy_.Zero()
                              : policy_.Compute(u, prev, excluded);
          changed_flag_[u] = !(v == cur[u]);
          cur[u] = v;
        }
      };
      if (pool == nullptr) {
        block(0, dirty_.size());
      } else {
        pool->ParallelForBlocks(dirty_.size(), kSweepBlockNodes, block);
      }
      stats_.nodes_incremental += dirty_.size();
      changed_.clear();
      for (NodeId u : dirty_) {
        if (!changed_flag_[u]) continue;
        changed_.push_back(u);
        if (!touched_stamp_.Contains(u)) {
          touched_stamp_.Insert(u);
          touched_.push_back(u);
        }
      }
    }
    // Refold the final score of every node with a changed level, in the
    // same increasing-level order as the rolling path (bitwise identical).
    for (NodeId u : touched_) {
      double s = 0.0;
      for (uint32_t i = 1; i <= l_; ++i) {
        policy_.AccumulateScore(u, &s, Level(i)[u], i);
      }
      score_[u] = s;
    }
    ++stats_.incremental_sweeps;
  }

  const Graph& graph_;
  Policy policy_;
  uint32_t l_;
  // Rolling buffers of the O(n)-space oracle path.
  std::vector<Value> prev_, cur_;
  // Incremental state: (l+1) levels of Values + persistent scores, lazily
  // allocated on the first Rescore so the oracle path keeps O(n) space.
  std::vector<Value> levels_;
  std::vector<double> score_;
  bool levels_valid_ = false;
  double incremental_fallback_fraction_ = 0.25;
  // Frontier scratch.
  EpochSet stamp_, touched_stamp_;
  std::vector<NodeId> base_dirty_, dirty_, changed_, touched_;
  std::vector<uint8_t> changed_flag_;
  // Byte counters are refreshed inside const stats() (capacity snapshots).
  mutable ScoreSweepStats stats_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_SCORE_SWEEP_H_

#ifndef HOLIM_ALGO_HEURISTICS_H_
#define HOLIM_ALGO_HEURISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/seed_selector.h"
#include "graph/graph.h"
#include "model/influence_params.h"

namespace holim {

/// Highest out-degree first. The classical "high-degree" baseline.
class DegreeSelector : public SeedSelector {
 public:
  explicit DegreeSelector(const Graph& graph) : graph_(graph) {}
  std::string name() const override { return "Degree"; }
  Result<SeedSelection> Select(uint32_t k) override;

 private:
  const Graph& graph_;
};

/// SingleDiscount: degree heuristic that discounts one unit per already-
/// selected neighbor (Chen et al., KDD'09).
class SingleDiscountSelector : public SeedSelector {
 public:
  explicit SingleDiscountSelector(const Graph& graph) : graph_(graph) {}
  std::string name() const override { return "SingleDiscount"; }
  Result<SeedSelection> Select(uint32_t k) override;

 private:
  const Graph& graph_;
};

/// DegreeDiscountIC (Chen et al., KDD'09): degree discount tuned to the
/// uniform-p IC model: ddv = dv - 2 tv - (dv - tv) tv p, where tv counts
/// selected in-neighbors of v.
class DegreeDiscountSelector : public SeedSelector {
 public:
  DegreeDiscountSelector(const Graph& graph, double p)
      : graph_(graph), p_(p) {}
  std::string name() const override { return "DegreeDiscountIC"; }
  Result<SeedSelection> Select(uint32_t k) override;

 private:
  const Graph& graph_;
  double p_;
};

/// PageRank on the reversed graph (influence flows along out-edges, so
/// rank mass flows along in-edges), selected by decreasing rank.
class PageRankSelector : public SeedSelector {
 public:
  PageRankSelector(const Graph& graph, double damping = 0.85,
                   uint32_t iterations = 50)
      : graph_(graph), damping_(damping), iterations_(iterations) {}
  std::string name() const override { return "PageRank"; }
  Result<SeedSelection> Select(uint32_t k) override;

  /// The rank vector (exposed for tests).
  std::vector<double> ComputeRanks() const;

 private:
  const Graph& graph_;
  double damping_;
  uint32_t iterations_;
};

/// Uniform-random seeds (sanity floor).
class RandomSelector : public SeedSelector {
 public:
  RandomSelector(const Graph& graph, uint64_t seed)
      : graph_(graph), seed_(seed) {}
  std::string name() const override { return "Random"; }
  Result<SeedSelection> Select(uint32_t k) override;

 private:
  const Graph& graph_;
  uint64_t seed_;
};

}  // namespace holim

#endif  // HOLIM_ALGO_HEURISTICS_H_

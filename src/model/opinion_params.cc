#include "model/opinion_params.h"

#include <algorithm>

#include "util/rng.h"

namespace holim {

double ClampOpinion(double o) { return std::clamp(o, -1.0, 1.0); }

OpinionParams MakeRandomOpinions(const Graph& graph,
                                 OpinionDistribution distribution,
                                 uint64_t seed) {
  Rng rng(seed);
  OpinionParams params;
  params.opinion.resize(graph.num_nodes());
  for (auto& o : params.opinion) {
    switch (distribution) {
      case OpinionDistribution::kUniform:
        o = rng.Uniform(-1.0, 1.0);
        break;
      case OpinionDistribution::kStandardNormal:
        o = ClampOpinion(rng.NextGaussian());
        break;
    }
  }
  params.interaction.resize(graph.num_edges());
  for (auto& phi : params.interaction) phi = rng.NextDouble();
  return params;
}

OpinionParams MakeDegenerateOpinions(const Graph& graph) {
  OpinionParams params;
  params.opinion.assign(graph.num_nodes(), 1.0);
  params.interaction.assign(graph.num_edges(), 1.0);
  return params;
}

}  // namespace holim

#ifndef HOLIM_MODEL_INFLUENCE_PARAMS_H_
#define HOLIM_MODEL_INFLUENCE_PARAMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace holim {

/// Which first-layer (opinion-oblivious) diffusion model is in force.
enum class DiffusionModel {
  kIndependentCascade,  // IC: fixed p per edge
  kWeightedCascade,     // WC: p(u,v) = 1/indeg(v)
  kLinearThreshold,     // LT: weights w(u,v), random thresholds
};

const char* DiffusionModelName(DiffusionModel model);

/// \brief Per-edge influence parameters for the first diffusion layer.
///
/// `probability[e]` is p(u,v) under IC/WC and also the live-edge probability
/// under LT (where it equals the edge weight w(u,v); Kempe's equivalence).
struct InfluenceParams {
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  std::vector<double> probability;  // indexed by EdgeId

  double p(EdgeId e) const { return probability[e]; }

  /// Allocated bytes, not used bytes: capacity()-based like every
  /// MemoryFootprintBytes/ScratchBytes in graph/, model/, and algo/, so the
  /// memory figures account for what the allocator actually holds.
  std::size_t MemoryFootprintBytes() const {
    return probability.capacity() * sizeof(double);
  }
};

/// IC with uniform probability (paper default p = 0.1).
InfluenceParams MakeUniformIc(const Graph& graph, double p = 0.1);

/// WC: p(u,v) = 1/|In(v)| (paper Sec. 3.3 / Sec. 4 convention).
InfluenceParams MakeWeightedCascade(const Graph& graph);

/// LT with w(u,v) = 1/|In(v)| so incoming weights sum to <= 1 (paper Sec. 4).
InfluenceParams MakeLinearThreshold(const Graph& graph);

/// Trivalency: each edge gets a probability drawn uniformly from `choices`
/// (classical TRIVALENCY benchmark assignment).
InfluenceParams MakeTrivalency(const Graph& graph, uint64_t seed,
                               const std::vector<double>& choices = {0.1, 0.01,
                                                                     0.001});

}  // namespace holim

#endif  // HOLIM_MODEL_INFLUENCE_PARAMS_H_

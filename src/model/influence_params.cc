#include "model/influence_params.h"

#include "util/logging.h"
#include "util/rng.h"

namespace holim {

const char* DiffusionModelName(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kIndependentCascade: return "IC";
    case DiffusionModel::kWeightedCascade: return "WC";
    case DiffusionModel::kLinearThreshold: return "LT";
  }
  return "?";
}

InfluenceParams MakeUniformIc(const Graph& graph, double p) {
  HOLIM_CHECK(p >= 0.0 && p <= 1.0) << "p out of [0,1]: " << p;
  InfluenceParams params;
  params.model = DiffusionModel::kIndependentCascade;
  params.probability.assign(graph.num_edges(), p);
  return params;
}

namespace {
InfluenceParams MakeInverseInDegree(const Graph& graph, DiffusionModel model) {
  InfluenceParams params;
  params.model = model;
  params.probability.assign(graph.num_edges(), 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t indeg = graph.InDegree(v);
    if (indeg == 0) continue;
    const double p = 1.0 / indeg;
    for (EdgeId e : graph.InEdgeIds(v)) params.probability[e] = p;
  }
  return params;
}
}  // namespace

InfluenceParams MakeWeightedCascade(const Graph& graph) {
  return MakeInverseInDegree(graph, DiffusionModel::kWeightedCascade);
}

InfluenceParams MakeLinearThreshold(const Graph& graph) {
  return MakeInverseInDegree(graph, DiffusionModel::kLinearThreshold);
}

InfluenceParams MakeTrivalency(const Graph& graph, uint64_t seed,
                               const std::vector<double>& choices) {
  HOLIM_CHECK(!choices.empty()) << "need at least one probability choice";
  Rng rng(seed);
  InfluenceParams params;
  params.model = DiffusionModel::kIndependentCascade;
  params.probability.resize(graph.num_edges());
  for (auto& p : params.probability) {
    p = choices[rng.NextBounded(choices.size())];
  }
  return params;
}

}  // namespace holim

#ifndef HOLIM_MODEL_OPINION_PARAMS_H_
#define HOLIM_MODEL_OPINION_PARAMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace holim {

/// \brief Second-layer (opinion) parameters of the OI model (paper Sec. 2.2).
///
/// `opinion[v]` in [-1, 1]: sign = orientation, magnitude = strength (Def. 4).
/// `interaction[e]` in [0, 1]: probability that the target of edge e accepts
/// information from the source with the same orientation (Def. 5).
struct OpinionParams {
  std::vector<double> opinion;      // indexed by NodeId
  std::vector<double> interaction;  // indexed by EdgeId

  double o(NodeId v) const { return opinion[v]; }
  double phi(EdgeId e) const { return interaction[e]; }

  /// Allocated bytes (capacity(), not size()) — the repo-wide accounting
  /// convention; see InfluenceParams::MemoryFootprintBytes.
  std::size_t MemoryFootprintBytes() const {
    return opinion.capacity() * sizeof(double) +
           interaction.capacity() * sizeof(double);
  }
};

/// How node opinions are synthesized for the benchmark datasets (Sec. 4.1.3):
/// (a) o ~ rand(-1, 1); (b) o ~ N(0, 1) clamped to [-1, 1].
enum class OpinionDistribution { kUniform, kStandardNormal };

/// Generates opinions from the given distribution and interactions
/// phi ~ rand(0, 1) (the paper's annotation procedure).
OpinionParams MakeRandomOpinions(const Graph& graph,
                                 OpinionDistribution distribution,
                                 uint64_t seed);

/// All opinions = 1, all interactions = 1: reduces MEO to classical IM
/// (the Lemma 1 NP-hardness reduction).
OpinionParams MakeDegenerateOpinions(const Graph& graph);

/// Clamps a raw opinion value into [-1, 1].
double ClampOpinion(double o);

}  // namespace holim

#endif  // HOLIM_MODEL_OPINION_PARAMS_H_
